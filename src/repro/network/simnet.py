"""Simulated cluster network.

Connects in-process node objects and *actually routes* payloads hop by
hop through a :class:`~repro.network.topology.Topology`, so hub
forwarding is real data movement, not an annotation. Per-link message
and byte counters plus the set of distinct connections ever opened per
node let tests and benchmarks verify the paper's central claim — the
``N_max`` bound on per-node connections — and let the cost model charge
for forwarding.

Time is modeled, not wall-clock: :class:`NetworkCostModel` converts the
recorded traffic into seconds using an alpha-beta (latency + bandwidth)
model, the standard abstraction for cluster interconnects.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..common.errors import NetworkError
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fault.injector import FaultInjector


@dataclass
class LinkStats:
    messages: int = 0
    bytes: int = 0


@dataclass
class TrafficStats:
    """Per-query-prefix traffic totals (concurrent-stats isolation)."""

    messages: int = 0
    bytes: int = 0
    forwarded_bytes: int = 0


def tag_prefix(tag: str) -> str:
    """The query prefix of an exchange tag.

    Concurrent queries namespace their exchange tags as
    ``q<id>|<exchange>`` so messages never cross-deliver between
    queries; everything before (and including) the first ``|`` is the
    query prefix. Untagged/legacy traffic accounts under ``""``.
    """
    i = tag.find("|")
    return tag[: i + 1] if i >= 0 else ""


class SimNetwork:
    """Thread-safe: concurrent queries send/receive under one reentrant
    lock (the real system's per-socket serialization), and per-query
    byte/message counters are kept alongside the global ones so each
    query's ExecStats stay isolated under concurrency."""

    def __init__(self, node_ids: Iterable[int]):
        self.node_ids = set(node_ids)
        self._inbox: dict[int, deque] = {n: deque() for n in self.node_ids}
        self.links: dict[tuple[int, int], LinkStats] = defaultdict(LinkStats)
        self.connections: dict[int, set[int]] = defaultdict(set)
        self.total_messages = 0
        self.total_bytes = 0
        self.forwarded_bytes = 0  # bytes relayed through hub nodes
        #: per query-prefix traffic (see :func:`tag_prefix`)
        self.tagged: dict[str, TrafficStats] = defaultdict(TrafficStats)
        #: chaos substrate; every send/recv consults it when attached
        self.injector: "FaultInjector | None" = None
        #: telemetry tracer; when set, sends/receives leave point spans
        #: on the calling query's active span (None == zero overhead)
        self.tracer = None
        self._msg_seq = itertools.count(1)
        #: per-node delivered message ids (duplicate suppression)
        self._seen: dict[int, set[int]] = defaultdict(set)
        self._lock = threading.RLock()

    def add_node(self, node_id: int) -> None:
        """Register a new node (elastic scale-out): it gets an inbox and
        may immediately send/receive. Idempotent."""
        with self._lock:
            if node_id in self.node_ids:
                return
            self.node_ids.add(node_id)
            self._inbox[node_id] = deque()

    def attach(self, injector: "FaultInjector | None") -> None:
        """Install (or remove, with None) the fault injector.

        Attaching one — even with the empty schedule — also switches
        receives to canonical ``(src, send-order)`` delivery order, so
        faulted runs compare byte-for-byte against a baseline run that
        attaches an empty-schedule injector.
        """
        self.injector = injector

    # -- raw link sends --------------------------------------------------------
    def send(self, src: int, dst: int, payload: bytes, tag: str = "") -> None:
        """Direct send over the (src, dst) link; opens the connection."""
        self._check(src)
        self._check(dst)
        with self._lock:
            copies = 1
            if self.injector is not None:
                copies = self.injector.on_send(src, dst, len(payload), tag)
            msg_id = next(self._msg_seq)
            # a dropped message still used the wire; charge every copy
            for _ in range(max(copies, 1)):
                self._account(src, dst, len(payload), forwarded=False, tag=tag)
            for _ in range(copies):
                self._deliver(dst, (src, tag, payload, msg_id))
            if self.tracer is not None:
                sp = self.tracer.point(
                    "net.send", cat="net", node=src, tag=tag,
                    dst=dst, hops=1, payload=len(payload),
                )
                # wire bytes == what _account charged (per hop, per copy)
                sp.bytes = len(payload) * max(copies, 1)

    def route_send(
        self, topology: Topology, src: int, dst: int, payload: bytes, tag: str = ""
    ) -> int:
        """Send along the topology's route; returns the hop count.

        Intermediate hops are charged as real link traffic (the hub
        forwarding cost of the n-to-m topology) but the payload is only
        delivered to ``dst``'s inbox.
        """
        with self._lock:
            if src == dst:
                self._deliver(dst, (src, tag, payload, next(self._msg_seq)))
                return 0
            copies = 1
            if self.injector is not None:
                copies = self.injector.on_send(src, dst, len(payload), tag)
            path = topology.route(src, dst)
            if self.injector is not None:
                for hop in path[:-1]:
                    self.injector.on_hop(hop, src, dst, tag)
            for _ in range(max(copies, 1)):
                prev = src
                for hop in path:
                    self._account(prev, hop, len(payload), forwarded=prev != src, tag=tag)
                    prev = hop
            if path[-1] != dst:  # pragma: no cover - topology contract
                raise NetworkError("route did not terminate at destination")
            msg_id = next(self._msg_seq)
            for _ in range(copies):
                self._deliver(dst, (src, tag, payload, msg_id))
            if self.tracer is not None:
                sp = self.tracer.point(
                    "net.send", cat="net", node=src, tag=tag,
                    dst=dst, hops=len(path), payload=len(payload),
                )
                sp.bytes = len(payload) * len(path) * max(copies, 1)
            return len(path)

    def _account(self, src: int, dst: int, nbytes: int, forwarded: bool, tag: str = "") -> None:
        stats = self.links[(src, dst)]
        stats.messages += 1
        stats.bytes += nbytes
        self.connections[src].add(dst)
        self.connections[dst].add(src)
        self.total_messages += 1
        self.total_bytes += nbytes
        q = self.tagged[tag_prefix(tag)]
        q.messages += 1
        q.bytes += nbytes
        if forwarded:
            self.forwarded_bytes += nbytes
            q.forwarded_bytes += nbytes

    def _deliver(self, dst: int, msg: tuple[int, str, bytes, int]) -> None:
        box = self._inbox[dst]
        pos = None
        if self.injector is not None:
            pos = self.injector.reorder_position(len(box))
        if pos is None:
            box.append(msg)
        else:
            box.insert(pos, msg)

    # -- receive ----------------------------------------------------------------
    def recv_all(self, node: int, tag: str | None = None) -> list[tuple[int, str, bytes]]:
        """Drain the node's inbox (optionally only messages with ``tag``).

        With an injector attached, a down node cannot receive, duplicate
        deliveries are suppressed by message id, and the drained messages
        are returned in canonical ``(src, send-order)`` order so fault-
        induced reorderings never change downstream results.
        """
        self._check(node)
        with self._lock:
            if self.injector is not None:
                self.injector.on_recv(node)
            box = self._inbox[node]
            if tag is None:
                out = list(box)
                box.clear()
            else:
                keep: deque = deque()
                out = []
                while box:
                    msg = box.popleft()
                    (out if msg[1] == tag else keep).append(msg)
                self._inbox[node] = keep
            if self.injector is not None:
                seen = self._seen[node]
                fresh = []
                for msg in out:
                    if msg[3] in seen:
                        self.injector.record("dedup", node=node, src=msg[0], tag=msg[1])
                        continue
                    seen.add(msg[3])
                    fresh.append(msg)
                fresh.sort(key=lambda m: (m[0], m[3]))
                out = fresh
            if self.tracer is not None and out:
                sp = self.tracer.point(
                    "net.recv", cat="net", node=node,
                    tag=tag or "", msgs=len(out),
                )
                sp.bytes = sum(len(m[2]) for m in out)
            return [(src, t, payload) for src, t, payload, _ in out]

    def pending(self, node: int) -> int:
        with self._lock:
            return len(self._inbox[node])

    def _check(self, node: int) -> None:
        if node not in self.node_ids:
            raise NetworkError(f"unknown node {node}")

    # -- accounting ---------------------------------------------------------------
    def max_connections(self) -> int:
        """Maximum distinct neighbors any node has talked to."""
        with self._lock:
            return max((len(v) for v in self.connections.values()), default=0)

    def connections_of(self, node: int) -> int:
        with self._lock:
            return len(self.connections.get(node, ()))

    def traffic_of(self, prefix: str) -> TrafficStats:
        """A snapshot of one query prefix's traffic totals."""
        with self._lock:
            t = self.tagged.get(prefix)
            return TrafficStats(t.messages, t.bytes, t.forwarded_bytes) if t else TrafficStats()

    def traffic_by_prefix(self) -> dict[str, TrafficStats]:
        """Snapshot of every prefix's traffic (incl. untagged ``""``)."""
        with self._lock:
            return {
                p: TrafficStats(t.messages, t.bytes, t.forwarded_bytes)
                for p, t in self.tagged.items()
            }

    def clear_inboxes(self, prefix: str | None = None) -> None:
        """Drop undelivered messages (query-restart cleanup).

        With ``prefix``, only messages whose tag belongs to that query
        prefix are dropped — concurrent queries' in-flight exchanges
        survive a neighbour's restart. Message-id dedup state is kept in
        the prefix case (restarts send fresh ids; other queries' dedup
        must not be forgotten).
        """
        with self._lock:
            if prefix is None:
                for box in self._inbox.values():
                    box.clear()
                self._seen.clear()
                return
            for node, box in self._inbox.items():
                kept = deque(m for m in box if tag_prefix(m[1]) != prefix)
                self._inbox[node] = kept

    def reset_stats(self) -> None:
        with self._lock:
            self.links.clear()
            self.connections.clear()
            self.tagged.clear()
            self.total_messages = 0
            self.total_bytes = 0
            self.forwarded_bytes = 0


@dataclass(frozen=True)
class NetworkCostModel:
    """Alpha-beta interconnect model.

    ``time = alpha * messages + bytes / bandwidth`` per link; aggregate
    query time uses the busiest link (the critical path under full
    overlap), which is how shuffle-bound stages behave.

    Defaults approximate the paper's FDR InfiniBand fabric as seen by a
    JVM application (effective, not line-rate).
    """

    alpha: float = 5e-6  # per-message latency, seconds
    bandwidth: float = 3e9  # effective bytes/second per link
    connection_setup: float = 2e-4  # socket open + handshake, seconds

    def link_time(self, stats: LinkStats) -> float:
        return self.alpha * stats.messages + stats.bytes / self.bandwidth

    def critical_path_time(self, net: SimNetwork) -> float:
        """Busiest-link time plus connection setup on the busiest node."""
        link = max((self.link_time(s) for s in net.links.values()), default=0.0)
        conn = net.max_connections() * self.connection_setup
        return link + conn

    def per_node_time(self, net: SimNetwork, node: int) -> float:
        t = 0.0
        for (src, dst), stats in net.links.items():
            if src == node or dst == node:
                t += self.link_time(stats)
        return t + self.connections_setup_time(net, node)

    def connections_setup_time(self, net: SimNetwork, node: int) -> float:
        return net.connections_of(node) * self.connection_setup
