"""ARIES-style recovery.

Temporary node failures are handled by log-based recovery (paper §I/§VI):

1. **Analysis** — scan the WAL forward, building the transaction table:
   committed, aborted, prepared (in-doubt), and active-at-crash (losers).
2. **Redo** — replay every UPDATE/CLR's after-image in LSN order
   (repeating history, including losers' changes).
3. **Undo** — roll back losers newest-first, writing compensation log
   records (CLRs) so a crash during recovery is itself recoverable.

In-doubt transactions (WAL ends at PREPARE) are *not* undone: the worker
asks the coordinator named in the PREPARE record for the global outcome
(paper: "the worker contacts this coordinator") via the resolver
callback, then commits or rolls back accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..common.errors import RecoveryError
from .wal import ABORT, BEGIN, COMMIT, COMPENSATION, LogManager, PREPARE, UPDATE

# resolver(coordinator_id, txn_id) -> "commit" | "rollback"
OutcomeResolver = Callable[[int, int], str]

# page writer: (page key tuple, image bytes) -> None
PageWriter = Callable[[tuple, bytes], None]


@dataclass
class RecoveryReport:
    committed: set[int] = field(default_factory=set)
    aborted: set[int] = field(default_factory=set)
    losers: set[int] = field(default_factory=set)
    in_doubt_resolved: dict[int, str] = field(default_factory=dict)
    redo_count: int = 0
    undo_count: int = 0


def recover(
    log: LogManager,
    write_page: PageWriter,
    resolve_outcome: Optional[OutcomeResolver] = None,
) -> RecoveryReport:
    report = RecoveryReport()
    records = log.records()

    # -- analysis ---------------------------------------------------------------
    status: dict[int, str] = {}
    prepared_coord: dict[int, int] = {}
    undone: dict[int, set[int]] = {}  # txn -> LSNs already compensated
    for rec in records:
        if rec.kind == BEGIN:
            status[rec.txn] = "active"
        elif rec.kind == UPDATE:
            status.setdefault(rec.txn, "active")
        elif rec.kind == COMPENSATION:
            undone.setdefault(rec.txn, set()).add(rec.undo_next or 0)
        elif rec.kind == PREPARE:
            status[rec.txn] = "prepared"
            prepared_coord[rec.txn] = rec.coordinator
        elif rec.kind == COMMIT:
            status[rec.txn] = "committed"
        elif rec.kind == ABORT:
            status[rec.txn] = "aborted"

    for txn, st in status.items():
        if st == "committed":
            report.committed.add(txn)
        elif st == "aborted":
            report.aborted.add(txn)
        elif st == "prepared":
            if resolve_outcome is None:
                raise RecoveryError(
                    f"txn {txn} is in-doubt but no coordinator resolver was supplied"
                )
            outcome = resolve_outcome(prepared_coord[txn], txn)
            if outcome not in ("commit", "rollback"):
                raise RecoveryError(f"coordinator returned invalid outcome {outcome!r}")
            report.in_doubt_resolved[txn] = outcome
            if outcome == "commit":
                report.committed.add(txn)
            else:
                report.losers.add(txn)
        else:
            report.losers.add(txn)

    # -- redo (repeat history) ------------------------------------------------------
    for rec in records:
        if rec.kind in (UPDATE, COMPENSATION) and rec.after is not None and rec.page:
            write_page(rec.page, rec.after)
            report.redo_count += 1

    # -- undo losers -------------------------------------------------------------------
    for rec in reversed(records):
        if rec.kind != UPDATE or rec.txn not in report.losers:
            continue
        if rec.lsn in undone.get(rec.txn, set()):
            continue  # already compensated before the crash
        if rec.before is not None and rec.page:
            write_page(rec.page, rec.before)
        log.append(
            txn=rec.txn,
            kind=COMPENSATION,
            page=rec.page,
            after=rec.before,
            undo_next=rec.lsn,
        )
        report.undo_count += 1
    for txn in report.losers:
        log.append(txn=txn, kind=ABORT)
    if report.losers or report.in_doubt_resolved:
        for txn, outcome in report.in_doubt_resolved.items():
            if outcome == "commit":
                log.append(txn=txn, kind=COMMIT)
        log.force()
    return report
