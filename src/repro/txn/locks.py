"""Lock manager (SS2PL, shared/exclusive page locks).

Each node runs its own lock manager, responsible only for locks on that
node (paper §VI). Strict strong 2PL: locks are held until commit or
abort. Conflicting requests either enqueue the requester (returning
``False`` so the simulated scheduler can retry) or — when the request
would close a cycle in the local wait-for graph — raise
:class:`DeadlockError` immediately, naming the victim. A timeout path
covers deadlocks spanning multiple nodes, exactly the paper's two-level
scheme (local wait-for graph + timeout for distributed cycles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..common.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    S = "shared"
    X = "exclusive"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held == LockMode.S and requested == LockMode.S


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    def __init__(self, node_id: int = 0, timeout: float = 10.0):
        self.node_id = node_id
        self.timeout = timeout
        self._locks: dict[object, _LockState] = {}
        self._held_by_txn: dict[int, set[object]] = {}
        #: txn -> (resource, waited-for txns); feeds the wait-for graph
        self._waiting: dict[int, tuple[object, LockMode]] = {}
        #: simulated wait durations per txn (for timeout tests)
        self._wait_time: dict[int, float] = {}
        # observability (sampled by the cluster metrics registry)
        #: requests that had to enqueue behind a conflicting holder
        self.waits = 0
        #: total simulated seconds spent waiting for locks
        self.wait_time_s = 0.0
        #: deadlocks detected (immediate local cycles + periodic victims)
        self.deadlocks = 0

    # -- acquisition ----------------------------------------------------------------
    def acquire(self, txn: int, resource: object, mode: LockMode) -> bool:
        """Try to take the lock. Returns True when granted; False when the
        transaction must wait (it is enqueued). Raises DeadlockError when
        waiting would create a local wait-for cycle."""
        state = self._locks.setdefault(resource, _LockState())
        held = state.holders.get(txn)
        if held is not None:
            if held == mode or held == LockMode.X:
                return True
            # upgrade S -> X: allowed when sole holder
            if len(state.holders) == 1:
                state.holders[txn] = LockMode.X
                return True
        if self._grantable(state, txn, mode):
            state.holders[txn] = _strongest(state.holders.get(txn), mode)
            self._held_by_txn.setdefault(txn, set()).add(resource)
            self._waiting.pop(txn, None)
            return True
        # must wait: deadlock check first
        blockers = {t for t in state.holders if t != txn}
        if self._would_deadlock(txn, blockers):
            self.deadlocks += 1
            raise DeadlockError(
                f"txn {txn} waiting on {sorted(blockers)} closes a wait-for cycle"
            )
        if (txn, mode) not in state.waiters:
            state.waiters.append((txn, mode))
            self.waits += 1
        self._waiting[txn] = (resource, mode)
        return False

    def _grantable(self, state: _LockState, txn: int, mode: LockMode) -> bool:
        others = {t: m for t, m in state.holders.items() if t != txn}
        ahead: list[tuple[int, LockMode]] = []
        for t, m in state.waiters:
            if t == txn:
                break
            ahead.append((t, m))
        if not others:
            # FIFO fairness: only waiters queued BEFORE us block the grant
            return not ahead
        if mode == LockMode.S and all(m == LockMode.S for m in others.values()):
            return not any(m == LockMode.X for _, m in ahead)
        return False

    def retry_waiters(self, resource: object) -> list[int]:
        """Grant queued requests that became compatible; returns granted txns."""
        state = self._locks.get(resource)
        if state is None:
            return []
        granted = []
        still = []
        for txn, mode in state.waiters:
            if self._grantable(state, txn, mode):
                state.holders[txn] = _strongest(state.holders.get(txn), mode)
                self._held_by_txn.setdefault(txn, set()).add(resource)
                self._waiting.pop(txn, None)
                granted.append(txn)
            else:
                still.append((txn, mode))
        state.waiters = still
        return granted

    # -- release ---------------------------------------------------------------------
    def release_all(self, txn: int) -> list[int]:
        """SS2PL: release everything at commit/abort. Returns txns granted."""
        granted: list[int] = []
        for resource in self._held_by_txn.pop(txn, set()):
            state = self._locks.get(resource)
            if state is None:
                continue
            state.holders.pop(txn, None)
            granted.extend(self.retry_waiters(resource))
            if not state.holders and not state.waiters:
                del self._locks[resource]
        # drop any queued request of the txn
        for state in self._locks.values():
            state.waiters = [(t, m) for t, m in state.waiters if t != txn]
        self._waiting.pop(txn, None)
        self._wait_time.pop(txn, None)
        return granted

    def cancel_wait(self, txn: int) -> None:
        """Withdraw a queued (ungranted) request, e.g. after a timeout;
        locks already held by the transaction are unaffected."""
        for state in self._locks.values():
            state.waiters = [(t, m) for t, m in state.waiters if t != txn]
        self._waiting.pop(txn, None)
        self._wait_time.pop(txn, None)

    # -- deadlock handling --------------------------------------------------------------
    def _wait_for_edges(self) -> dict[int, set[int]]:
        edges: dict[int, set[int]] = {}
        for txn, (resource, mode) in self._waiting.items():
            state = self._locks.get(resource)
            if state is None:
                continue
            edges[txn] = {t for t in state.holders if t != txn}
        return edges

    def _would_deadlock(self, txn: int, blockers: set[int]) -> bool:
        edges = self._wait_for_edges()
        edges[txn] = set(blockers)
        # DFS from each blocker: can we reach txn?
        seen: set[int] = set()
        stack = list(blockers)
        while stack:
            t = stack.pop()
            if t == txn:
                return True
            if t in seen:
                continue
            seen.add(t)
            stack.extend(edges.get(t, ()))
        return False

    def detect_deadlocks(self) -> list[int]:
        """Periodic detector (paper: runs once a minute): returns victims
        (youngest txn of each cycle)."""
        edges = self._wait_for_edges()
        victims: list[int] = []
        seen_global: set[int] = set()
        for start in list(edges):
            if start in seen_global:
                continue
            path: list[int] = []
            on_path: set[int] = set()

            def dfs(t: int) -> int | None:
                if t in on_path:
                    cycle = path[path.index(t):]
                    return max(cycle)  # youngest = largest id
                if t in seen_global:
                    return None
                seen_global.add(t)
                path.append(t)
                on_path.add(t)
                for nxt in edges.get(t, ()):
                    v = dfs(nxt)
                    if v is not None:
                        return v
                path.pop()
                on_path.remove(t)
                return None

            v = dfs(start)
            if v is not None:
                victims.append(v)
        self.deadlocks += len(victims)
        return victims

    def advance_time(self, txn: int, seconds: float) -> None:
        """Simulated waiting; raises on timeout (distributed-deadlock escape)."""
        if txn not in self._waiting:
            return
        self.wait_time_s += seconds
        self._wait_time[txn] = self._wait_time.get(txn, 0.0) + seconds
        if self._wait_time[txn] > self.timeout:
            raise LockTimeoutError(f"txn {txn} exceeded lock timeout on {self._waiting[txn][0]!r}")

    # -- introspection ---------------------------------------------------------------------
    def holds(self, txn: int, resource: object) -> LockMode | None:
        state = self._locks.get(resource)
        return state.holders.get(txn) if state else None

    def held_resources(self, txn: int) -> set[object]:
        return set(self._held_by_txn.get(txn, set()))

    def is_waiting(self, txn: int) -> bool:
        return txn in self._waiting


def _strongest(a: LockMode | None, b: LockMode) -> LockMode:
    if a == LockMode.X or b == LockMode.X:
        return LockMode.X
    return LockMode.S
