"""Hierarchical two-phase commit (System-R*-style, over the tree topology).

The XA manager on the owning coordinator drives commit: PREPARE fans out
along the tree topology (so the coordinator only talks to its ``N_max-1``
children; every inner node forwards to its subtree), votes are aggregated
on the way back up (a node answers YES only if it and *all* its children
voted YES), and the COMMIT/ROLLBACK decision is broadcast the same way.
Message counts therefore grow per-node-bounded, the property the paper
credits for 2PC scalability (§VI).

All decisions are WAL-logged: participants force a PREPARE record before
voting; the coordinator forces the decision to its XA log before phase 2
(presumed abort: a missing decision record means rollback).

Failure handling (the chaos substrate exercises all of these):

* a participant that cannot be reached or raises during PREPARE counts
  as a **NO vote** — the prepare timeout degenerates to presumed abort;
* a coordinator crash before the decision record is forced raises
  :class:`TwoPCError`; prepared participants are left in doubt and run
  the termination protocol against :meth:`XAManager.outcome` once the
  coordinator recovers (presumed abort: no record, no commit);
* a hub-node failure mid-broadcast reroutes the decision through a tree
  rebuilt over the still-unreached participants; participants that are
  themselves down are recorded in :attr:`XAManager.in_doubt` and
  converge later via the termination protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..common.errors import NetworkError, TwoPCError, WorkerFailureError
from ..network.simnet import SimNetwork
from ..network.topology import TreeTopology
from .wal import ABORT, COMMIT, LogManager


class Participant(Protocol):
    node_id: int

    def prepare(self, txn: int, coordinator: int) -> bool: ...

    def commit(self, txn: int) -> None: ...

    def rollback(self, txn: int) -> None: ...


@dataclass
class TwoPCStats:
    prepare_messages: int = 0
    decision_messages: int = 0
    coordinator_messages: int = 0  # messages the coordinator itself sent/recv
    #: unreachable/failed participants treated as NO votes (prepare timeouts)
    timeouts: int = 0
    #: participants the decision could not be delivered to
    in_doubt: int = 0
    #: decision deliveries that needed a rebuilt tree (hub failure reroute)
    rerouted: int = 0


class XAManager:
    """Global transaction manager on one coordinator (paper §VI)."""

    def __init__(self, coord_id: int, net: SimNetwork, n_max: int, xa_log: LogManager):
        self.coord_id = coord_id
        self.net = net
        self.n_max = n_max
        self.xa_log = xa_log
        #: decisions by txn (also recoverable from the XA log)
        self.decisions: dict[int, str] = {}
        #: per-txn participants the decision never reached (await termination)
        self.in_doubt: dict[int, set[int]] = {}

    # -- the protocol ----------------------------------------------------------------
    def commit(
        self,
        txn: int,
        participants: dict[int, Participant],
        stats: TwoPCStats | None = None,
    ) -> bool:
        """Run hierarchical 2PC; returns True on commit, False on rollback."""
        stats = stats if stats is not None else TwoPCStats()
        if not participants:
            self._decide(txn, "commit")
            return True
        # the coordinator itself may be a participant (metadata txns update
        # the local catalog replica too): it participates but is not added
        # to the tree twice
        others = sorted(p for p in participants if p != self.coord_id)
        tree = TreeTopology([self.coord_id] + others, self.n_max, root=self.coord_id)

        def prepare_subtree(node: int) -> bool:
            """Deliver PREPARE to node, recurse to children, aggregate votes."""
            vote = True
            if node in participants:
                try:
                    vote = participants[node].prepare(txn, self.coord_id)
                except Exception:
                    # a participant that dies while preparing never voted:
                    # count it as NO (presumed abort)
                    stats.timeouts += 1
                    vote = False
            for child in tree.children(node):
                try:
                    self.net.send(node, child, b"PREPARE", tag=f"2pc{txn}")
                except (NetworkError, WorkerFailureError):
                    # the child (or this hub) is unreachable or down: its
                    # whole subtree never prepares, so silence is a NO vote
                    stats.timeouts += 1
                    vote = False
                    continue
                stats.prepare_messages += 1
                if node == self.coord_id:
                    stats.coordinator_messages += 1
                child_vote = prepare_subtree(child)
                try:
                    self.net.send(child, node, b"YES" if child_vote else b"NO", tag=f"2pc{txn}")
                except (NetworkError, WorkerFailureError):
                    stats.timeouts += 1
                    child_vote = False
                else:
                    stats.prepare_messages += 1
                    if node == self.coord_id:
                        stats.coordinator_messages += 1
                vote = vote and child_vote
            return vote

        all_yes = prepare_subtree(self.coord_id)
        decision = "commit" if all_yes else "rollback"
        # the decision record must hit the XA log before phase 2; a
        # coordinator crash at this boundary leaves every prepared
        # participant in doubt (resolved by the termination protocol)
        inj = getattr(self.net, "injector", None)
        if inj is not None:
            inj.advance()  # deciding consumes fault-clock time
            if inj.node_down(self.coord_id):
                inj.record("crash_before_decision", node=self.coord_id)
                raise TwoPCError(
                    f"coordinator {self.coord_id} crashed before logging a decision "
                    f"for txn {txn}"
                )
        self._decide(txn, decision)

        # phase 2: apply locally, then broadcast down the tree
        if self.coord_id in participants:
            self._apply(participants[self.coord_id], txn, decision)
        undelivered = self._broadcast_decision(txn, decision, participants, others, stats)
        if undelivered:
            self.in_doubt[txn] = undelivered
            stats.in_doubt += len(undelivered)

        # drain protocol messages so inboxes stay clean
        for node in tree.nodes:
            try:
                self.net.recv_all(node, tag=f"2pc{txn}")
            except WorkerFailureError:
                pass  # a down node keeps its stale protocol messages
        return decision == "commit"

    def _broadcast_decision(
        self,
        txn: int,
        decision: str,
        participants: dict[int, Participant],
        targets: list[int],
        stats: TwoPCStats,
    ) -> set[int]:
        """Deliver the decision down the tree; on hub failure, rebuild the
        tree over the unreached participants and reroute. Returns the set
        of participants the decision never reached (left in doubt)."""
        remaining = set(targets)
        in_doubt: set[int] = set()
        rounds = 0
        while remaining:
            rounds += 1
            tree = TreeTopology(
                [self.coord_id] + sorted(remaining), self.n_max, root=self.coord_id
            )
            reached: set[int] = set()

            def walk(node: int) -> None:
                for child in tree.children(node):
                    try:
                        self.net.send(node, child, decision.upper().encode(), tag=f"2pc{txn}")
                    except WorkerFailureError as e:
                        if e.worker_id == child:
                            # the child itself is down: it stays in doubt
                            # until its recovery runs the termination protocol
                            in_doubt.add(child)
                        # else the hub failed: the child may be alive, keep
                        # it in `remaining` so the rebuilt tree reroutes it
                        continue
                    except NetworkError:
                        continue  # transient link fault: retry next round
                    stats.decision_messages += 1
                    if node == self.coord_id:
                        stats.coordinator_messages += 1
                    if rounds > 1:
                        stats.rerouted += 1
                    reached.add(child)
                    if child in participants:
                        self._apply(participants[child], txn, decision)
                    walk(child)

            walk(self.coord_id)
            progressed = reached | in_doubt
            remaining -= progressed
            if not progressed or rounds >= 4:
                # no route makes progress (e.g. the coordinator itself is
                # down): everyone left converges via the termination protocol
                in_doubt |= remaining
                break
        return in_doubt

    def _apply(self, participant: Participant, txn: int, decision: str) -> None:
        if decision == "commit":
            participant.commit(txn)
        else:
            participant.rollback(txn)

    def rollback(self, txn: int, participants: dict[int, Participant]) -> None:
        self._decide(txn, "rollback")
        for p in participants.values():
            p.rollback(txn)

    def _decide(self, txn: int, decision: str) -> None:
        self.xa_log.append(txn=txn, kind=COMMIT if decision == "commit" else ABORT)
        self.xa_log.force()
        self.decisions[txn] = decision

    # -- recovery support -----------------------------------------------------------------
    def outcome(self, txn: int) -> str:
        """The decision a recovering worker asks for (presumed abort)."""
        if txn in self.decisions:
            return self.decisions[txn]
        for rec in self.xa_log.scan():
            if rec.txn == txn and rec.kind == COMMIT:
                return "commit"
            if rec.txn == txn and rec.kind == ABORT:
                return "rollback"
        return "rollback"  # presumed abort

    def recover(self) -> dict[int, str]:
        """Coordinator restart: rebuild the decision table from the forced
        XA log (ARIES analysis over the decision records)."""
        self.decisions = {}
        for rec in self.xa_log.scan():
            if rec.kind == COMMIT:
                self.decisions[rec.txn] = "commit"
            elif rec.kind == ABORT:
                self.decisions[rec.txn] = "rollback"
        return dict(self.decisions)
