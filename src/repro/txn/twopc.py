"""Hierarchical two-phase commit (System-R*-style, over the tree topology).

The XA manager on the owning coordinator drives commit: PREPARE fans out
along the tree topology (so the coordinator only talks to its ``N_max-1``
children; every inner node forwards to its subtree), votes are aggregated
on the way back up (a node answers YES only if it and *all* its children
voted YES), and the COMMIT/ROLLBACK decision is broadcast the same way.
Message counts therefore grow per-node-bounded, the property the paper
credits for 2PC scalability (§VI).

All decisions are WAL-logged: participants force a PREPARE record before
voting; the coordinator forces the decision to its XA log before phase 2
(presumed abort: a missing decision record means rollback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from ..common.errors import TwoPCError
from ..network.simnet import SimNetwork
from ..network.topology import TreeTopology
from .wal import ABORT, COMMIT, LogManager, PREPARE


class Participant(Protocol):
    node_id: int

    def prepare(self, txn: int, coordinator: int) -> bool: ...

    def commit(self, txn: int) -> None: ...

    def rollback(self, txn: int) -> None: ...


@dataclass
class TwoPCStats:
    prepare_messages: int = 0
    decision_messages: int = 0
    coordinator_messages: int = 0  # messages the coordinator itself sent/recv


class XAManager:
    """Global transaction manager on one coordinator (paper §VI)."""

    def __init__(self, coord_id: int, net: SimNetwork, n_max: int, xa_log: LogManager):
        self.coord_id = coord_id
        self.net = net
        self.n_max = n_max
        self.xa_log = xa_log
        #: decisions by txn (also recoverable from the XA log)
        self.decisions: dict[int, str] = {}

    # -- the protocol ----------------------------------------------------------------
    def commit(
        self,
        txn: int,
        participants: dict[int, Participant],
        stats: TwoPCStats | None = None,
    ) -> bool:
        """Run hierarchical 2PC; returns True on commit, False on rollback."""
        stats = stats if stats is not None else TwoPCStats()
        if not participants:
            self._decide(txn, "commit")
            return True
        # the coordinator itself may be a participant (metadata txns update
        # the local catalog replica too): it participates but is not added
        # to the tree twice
        others = sorted(p for p in participants if p != self.coord_id)
        tree = TreeTopology([self.coord_id] + others, self.n_max, root=self.coord_id)

        def prepare_subtree(node: int) -> bool:
            """Deliver PREPARE to node, recurse to children, aggregate votes."""
            vote = True
            if node in participants:
                vote = participants[node].prepare(txn, self.coord_id)
            for child in tree.children(node):
                self.net.send(node, child, b"PREPARE", tag=f"2pc{txn}")
                stats.prepare_messages += 1
                if node == self.coord_id:
                    stats.coordinator_messages += 1
                child_vote = prepare_subtree(child)
                self.net.send(child, node, b"YES" if child_vote else b"NO", tag=f"2pc{txn}")
                stats.prepare_messages += 1
                if node == self.coord_id:
                    stats.coordinator_messages += 1
                vote = vote and child_vote
            return vote

        all_yes = prepare_subtree(self.coord_id)
        decision = "commit" if all_yes else "rollback"
        self._decide(txn, decision)

        def decide_subtree(node: int) -> None:
            if node in participants:
                if decision == "commit":
                    participants[node].commit(txn)
                else:
                    participants[node].rollback(txn)
            for child in tree.children(node):
                self.net.send(node, child, decision.upper().encode(), tag=f"2pc{txn}")
                stats.decision_messages += 1
                if node == self.coord_id:
                    stats.coordinator_messages += 1
                decide_subtree(child)

        decide_subtree(self.coord_id)
        # drain protocol messages so inboxes stay clean
        for node in tree.nodes:
            self.net.recv_all(node, tag=f"2pc{txn}")
        return decision == "commit"

    def rollback(self, txn: int, participants: dict[int, Participant]) -> None:
        self._decide(txn, "rollback")
        for p in participants.values():
            p.rollback(txn)

    def _decide(self, txn: int, decision: str) -> None:
        self.xa_log.append(txn=txn, kind=COMMIT if decision == "commit" else ABORT)
        self.xa_log.force()
        self.decisions[txn] = decision

    # -- recovery support -----------------------------------------------------------------
    def outcome(self, txn: int) -> str:
        """The decision a recovering worker asks for (presumed abort)."""
        if txn in self.decisions:
            return self.decisions[txn]
        for rec in self.xa_log.scan():
            if rec.txn == txn and rec.kind == COMMIT:
                return "commit"
            if rec.txn == txn and rec.kind == ABORT:
                return "rollback"
        return "rollback"  # presumed abort
