"""Write-ahead logging.

Every node runs a log manager over an append-only WAL file (paper §VI).
Worker WALs track user-data changes; coordinator WALs track metadata
changes and additionally keep the *XA log* of PREPARE/COMMIT/ROLLBACK
decisions that workers consult when their own WAL ends at an in-doubt
PREPARE record.

Records are length-prefixed pickled dicts with monotonically increasing
LSNs; ``force()`` is the durability barrier 2PC requires before
acknowledging PREPARE or COMMIT.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from ..common.errors import RecoveryError
from ..util.fs import FileSystem

# record types
UPDATE = "update"
COMPENSATION = "clr"
BEGIN = "begin"
COMMIT = "commit"
ABORT = "abort"
PREPARE = "prepare"
CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn: int
    kind: str
    #: (table, fragment path, page_no) for UPDATE/CLR
    page: Optional[tuple] = None
    before: Optional[bytes] = None
    after: Optional[bytes] = None
    #: CLR: next record to undo
    undo_next: Optional[int] = None
    #: PREPARE: which coordinator owns the commit decision
    coordinator: Optional[int] = None
    #: extra payload (metadata ops, 2PC participant lists, ...)
    info: Optional[dict] = None


class LogManager:
    def __init__(self, fs: FileSystem, path: str = "wal/log.wal"):
        self.fs = fs
        self.path = path
        self._fh = fs.open(path)
        self._next_lsn = 1
        self._tail = self._fh.size()
        self._unforced = 0
        # observability (sampled by the cluster metrics registry)
        #: records appended over the manager's lifetime
        self.records_written = 0
        #: force() calls that actually had unforced records (fsync batches)
        self.fsync_batches = 0
        #: records covered by those batches (group-commit amortization)
        self.fsynced_records = 0
        if self._tail:
            for rec in self.scan():
                self._next_lsn = rec.lsn + 1

    # -- writing -----------------------------------------------------------------
    def append(self, **kw) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        rec = LogRecord(lsn=lsn, **kw)
        blob = pickle.dumps(rec, protocol=4)
        self._fh.pwrite(self._tail, struct.pack("<I", len(blob)) + blob)
        self._tail += 4 + len(blob)
        self._unforced += 1
        self.records_written += 1
        return lsn

    def force(self) -> None:
        """Flush to stable storage (WAL protocol barrier)."""
        self._fh.sync()
        if self._unforced:
            self.fsync_batches += 1
            self.fsynced_records += self._unforced
        self._unforced = 0

    # -- reading ------------------------------------------------------------------
    def scan(self) -> Iterator[LogRecord]:
        size = self._fh.size()
        off = 0
        while off < size:
            header = self._fh.pread(off, 4)
            (n,) = struct.unpack("<I", header)
            if n == 0:
                break
            blob = self._fh.pread(off + 4, n)
            try:
                rec = pickle.loads(blob)
            except Exception as e:  # pragma: no cover - corrupt log
                raise RecoveryError(f"corrupt WAL record at {off}: {e}") from e
            yield rec
            off += 4 + n

    def records(self) -> list[LogRecord]:
        return list(self.scan())

    def truncate(self) -> None:
        self._fh.truncate(0)
        self._tail = 0
        self._next_lsn = 1
