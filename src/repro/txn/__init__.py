"""Concurrency control and recovery: SS2PL, WAL, ARIES, hierarchical 2PC."""

from .aries import RecoveryReport, recover
from .locks import LockManager, LockMode
from .manager import TransactionSystem, Txn
from .twopc import TwoPCStats, XAManager
from .wal import LogManager, LogRecord

__all__ = [
    "LockManager",
    "LockMode",
    "LogManager",
    "LogRecord",
    "recover",
    "RecoveryReport",
    "XAManager",
    "TwoPCStats",
    "TransactionSystem",
    "Txn",
]
