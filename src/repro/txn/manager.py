"""Transaction system: ties locks, WAL, and 2PC to the cluster.

Every worker runs a lock manager, transaction manager, and log manager;
every coordinator additionally runs an XA manager (paper §VI). DML
statements execute under SS2PL with logical undo logging; commit runs
hierarchical 2PC across the involved workers. DDL (metadata changes)
must succeed on *every* coordinator replica before committing — the
paper's coordinator-metadata synchronization — which we drive through
the same 2PC machinery with coordinators as participants.

Undo is logical: an insert's compensation deletes exactly the inserted
rows, a delete's re-inserts the removed rows, an update's restores the
before-rows. Storage flushes at commit (force policy at the system
level; the page-image no-force ARIES path lives in
:mod:`repro.txn.aries` and is exercised at the storage layer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..common.batch import RowBatch
from ..common.errors import LockTimeoutError, TxnAbortedError, TxnError
from ..sql.compiler import compile_predicate
from .locks import LockManager, LockMode
from .twopc import TwoPCStats, XAManager
from .wal import ABORT, COMMIT, LogManager, PREPARE, UPDATE

_txn_ids = itertools.count(1)


@dataclass
class Txn:
    txn_id: int
    coordinator: int
    involved: set[int] = field(default_factory=set)
    state: str = "active"  # active | committed | aborted
    #: logical undo stack per worker: (worker, op, table, payload)
    undo: list[tuple[int, str, str, object]] = field(default_factory=list)

    def check_active(self) -> None:
        if self.state != "active":
            raise TxnAbortedError(f"txn {self.txn_id} is {self.state}")


class WorkerTxnNode:
    """Per-worker lock manager + transaction manager + log manager."""

    def __init__(self, worker, timeout: float = 10.0):
        self.worker = worker
        self.node_id = worker.worker_id
        self.locks = LockManager(worker.worker_id, timeout)
        self.log = LogManager(worker.fs, "wal/log.wal")
        self._system: "TransactionSystem | None" = None

    # 2PC participant interface ----------------------------------------------------
    def prepare(self, txn: int, coordinator: int) -> bool:
        self.log.append(txn=txn, kind=PREPARE, coordinator=coordinator)
        self.log.force()
        return True

    def commit(self, txn: int) -> None:
        self.log.append(txn=txn, kind=COMMIT)
        self.log.force()
        # request the buffer manager to write back and release locks (paper's
        # commit-time actions: unpin pages, release locks, persist WAL)
        self.worker.bufmgr.flush()
        self.locks.release_all(txn)

    def rollback(self, txn: int) -> None:
        if self._system is not None:
            self._system.undo_on_worker(self.node_id, txn)
        self.log.append(txn=txn, kind=ABORT)
        self.log.force()
        self.locks.release_all(txn)


class TransactionSystem:
    def __init__(self, db):
        self.db = db
        self.nodes: dict[int, WorkerTxnNode] = {}
        for w, worker in db.workers.items():
            node = WorkerTxnNode(worker, db.config.lock_timeout)
            node._system = self
            self.nodes[w] = node
        self.xa: dict[int, XAManager] = {}
        for i, coord in enumerate(db.coordinators):
            fs = db.workers[db.worker_ids[0]].fs  # coordinator logs share sim FS space
            log = LogManager(fs, f"wal/xa_coord{coord.coord_id}.wal")
            self.xa[coord.coord_id] = XAManager(coord.coord_id, db.net, db.config.n_max, log)
        self._active: dict[int, Txn] = {}

    def register_worker(self, worker) -> None:
        """Elastic scale-out: give a joining worker its lock/txn/log node.

        Mutates ``nodes`` in place so metric collectors holding the dict
        pick the new worker up. Drained workers keep their node (their
        WAL history stays queryable); DML never touches them again
        because every DML path iterates the live ``db.worker_ids``."""
        if worker.worker_id in self.nodes:
            return
        node = WorkerTxnNode(worker, self.db.config.lock_timeout)
        node._system = self
        self.nodes[worker.worker_id] = node

    # -- lifecycle ---------------------------------------------------------------------
    def begin(self, coordinator: int = 0) -> Txn:
        txn = Txn(next(_txn_ids), self.db.coord_ids[coordinator])
        self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Txn, stats: TwoPCStats | None = None) -> bool:
        txn.check_active()
        participants = {w: self.nodes[w] for w in txn.involved}
        ok = self.xa[txn.coordinator].commit(txn.txn_id, participants, stats)
        txn.state = "committed" if ok else "aborted"
        self._active.pop(txn.txn_id, None)
        return ok

    def rollback(self, txn: Txn) -> None:
        txn.check_active()
        participants = {w: self.nodes[w] for w in txn.involved}
        self.xa[txn.coordinator].rollback(txn.txn_id, participants)
        txn.state = "aborted"
        self._active.pop(txn.txn_id, None)

    # -- DML ----------------------------------------------------------------------------
    def run_dml(
        self,
        table: str,
        op: str,
        batch: RowBatch | None = None,
        predicate=None,
        assignments=None,
        txn: Txn | None = None,
    ) -> int:
        autocommit = txn is None
        txn = txn or self.begin()
        txn.check_active()
        entry = self.db.catalog.entry(table)
        try:
            if op == "insert":
                n = self._insert(txn, entry, batch)
            elif op == "delete":
                n = self._delete(txn, entry, predicate)
            elif op == "update":
                n = self._update(txn, entry, predicate, assignments)
            else:
                raise TxnError(f"unknown DML op {op!r}")
        except Exception:
            self.rollback(txn)
            raise
        if autocommit:
            if not self.commit(txn):
                raise TxnError("autocommit transaction failed to commit")
        return n

    def _lock(self, txn: Txn, worker_id: int, table: str, mode: LockMode = LockMode.X) -> None:
        node = self.nodes[worker_id]
        granted = node.locks.acquire(txn.txn_id, ("table", table), mode)
        if not granted:
            # single-threaded simulation: a conflicting holder will not go
            # away while we wait, so surface the timeout immediately —
            # withdrawing the queued request so it can't be granted later
            try:
                node.locks.advance_time(txn.txn_id, self.db.config.lock_timeout + 1)
            finally:
                node.locks.cancel_wait(txn.txn_id)
            raise LockTimeoutError(f"txn {txn.txn_id} blocked on {table} at worker {worker_id}")
        txn.involved.add(worker_id)

    def lock_read(self, txn: Txn, tables: set[str]) -> None:
        """Serializable reads: S-locks on every worker holding the tables
        (SS2PL — held until commit, like all locks)."""
        txn.check_active()
        for table in sorted(tables):
            for w in self.db.worker_ids:
                self._lock(txn, w, table, LockMode.S)

    def _insert(self, txn: Txn, entry, batch: RowBatch) -> int:
        from ..storage.partition import Replicated

        n_workers = len(self.db.worker_ids)  # live membership, not the seed size
        if isinstance(entry.scheme, Replicated):
            parts = {w: batch for w in self.db.worker_ids}
        else:
            targets = entry.scheme.assign_nodes(batch, n_workers)
            parts = {
                self.db.worker_ids[i]: batch.filter(targets == i) for i in range(n_workers)
            }
        total = 0
        for w, part in parts.items():
            if part.length == 0:
                continue
            self._lock(txn, w, entry.name)
            node = self.nodes[w]
            node.log.append(
                txn=txn.txn_id, kind=UPDATE, page=("logical", entry.name, w),
                after=part.to_bytes(), info={"op": "insert"},
            )
            self.db.workers[w].storage[entry.name].insert(part)
            txn.undo.append((w, "insert", entry.name, part))
            total += part.length
        return total

    def _delete(self, txn: Txn, entry, predicate) -> int:
        pred_fn = self._compile_pred(entry, predicate)
        total = 0
        for w in self.db.worker_ids:
            storage = self.db.workers[w].storage[entry.name]
            victims = self._matching_rows(storage, pred_fn)
            if victims.length == 0:
                continue
            self._lock(txn, w, entry.name)
            node = self.nodes[w]
            node.log.append(
                txn=txn.txn_id, kind=UPDATE, page=("logical", entry.name, w),
                before=victims.to_bytes(), info={"op": "delete"},
            )
            storage.delete_where(pred_fn)
            txn.undo.append((w, "delete", entry.name, victims))
            total += victims.length
        return total

    def _update(self, txn: Txn, entry, predicate, assignments) -> int:
        from ..sql.compiler import compile_expr

        pred_fn = self._compile_pred(entry, predicate)
        assign_fns = [
            (col, compile_expr(e, entry.schema)) for col, e in (assignments or [])
        ]

        def updater(old: RowBatch) -> RowBatch:
            cols = dict(old.columns)
            for col, compiled in assign_fns:
                cols[entry.schema.resolve(col)] = np.asarray(compiled.fn(old))
            return RowBatch(old.schema, cols)

        total = 0
        for w in self.db.worker_ids:
            storage = self.db.workers[w].storage[entry.name]
            victims = self._matching_rows(storage, pred_fn)
            if victims.length == 0:
                continue
            self._lock(txn, w, entry.name)
            node = self.nodes[w]
            new_rows = updater(victims)
            node.log.append(
                txn=txn.txn_id, kind=UPDATE, page=("logical", entry.name, w),
                before=victims.to_bytes(), after=new_rows.to_bytes(), info={"op": "update"},
            )
            storage.update_where(pred_fn, updater)
            txn.undo.append((w, "update", entry.name, (victims, new_rows)))
            total += victims.length
        return total

    def _compile_pred(self, entry, predicate):
        if predicate is None:
            return lambda b: np.ones(b.length, dtype=bool)
        return compile_predicate(predicate, entry.schema)

    @staticmethod
    def _matching_rows(storage, pred_fn) -> RowBatch:
        from ..cluster.database import _all_of

        allb = _all_of(storage)
        return allb.filter(pred_fn(allb))

    # -- logical undo --------------------------------------------------------------------
    def undo_on_worker(self, worker_id: int, txn_id: int) -> None:
        txn = self._active.get(txn_id)
        if txn is None:
            return
        for w, op, table, payload in reversed(txn.undo):
            if w != worker_id:
                continue
            worker = self.db.workers.get(w)  # may have drained mid-txn
            storage = worker.storage.get(table) if worker is not None else None
            if storage is None:
                continue
            if op == "insert":
                self._delete_exact(storage, payload)
            elif op == "delete":
                storage.insert(payload)
            elif op == "update":
                before, after = payload
                self._delete_exact(storage, after)
                storage.insert(before)

    @staticmethod
    def _delete_exact(storage, rows: RowBatch) -> None:
        """Delete exactly the given rows (whole-row match)."""
        keys = set(map(tuple, rows.rows()))
        names = rows.schema.names()

        def pred(b: RowBatch) -> np.ndarray:
            cols = [b.col(n) for n in names]
            out = np.zeros(b.length, dtype=bool)
            for i in range(b.length):
                if tuple(c[i] for c in cols) in keys:
                    out[i] = True
            return out

        storage.delete_where(pred)

    # -- crash recovery (2PC termination protocol) -----------------------------------------
    def recover_worker(self, worker_id: int) -> dict[int, str]:
        """Post-crash recovery for one worker's transaction state.

        Scans the worker's WAL: transactions whose log ends without a
        decision are either **losers** (no PREPARE record — presumed
        abort, undone from WAL before-images) or **in doubt** (PREPARE
        forced, no decision — the termination protocol asks the owning
        coordinator's :meth:`XAManager.outcome`, which answers from its
        forced XA log or presumes abort). Returns ``{txn: decision}`` for
        every transaction resolved.
        """
        node = self.nodes[worker_id]
        status: dict[int, tuple[str, int | None]] = {}
        for rec in node.log.records():
            if rec.kind == UPDATE:
                status.setdefault(rec.txn, ("active", None))
            elif rec.kind == PREPARE:
                status[rec.txn] = ("prepared", rec.coordinator)
            elif rec.kind in (COMMIT, ABORT):
                status[rec.txn] = ("decided", None)
        resolved: dict[int, str] = {}
        for txn_id, (state, coord) in status.items():
            if state == "decided":
                continue
            if state == "prepared":
                xa = self.xa.get(coord) or next(iter(self.xa.values()))
                decision = xa.outcome(txn_id)
            else:
                decision = "rollback"  # loser transaction: presumed abort
            if decision == "commit":
                node.commit(txn_id)
            else:
                self.undo_from_wal(worker_id, txn_id)
                node.log.append(txn=txn_id, kind=ABORT)
                node.log.force()
                node.locks.release_all(txn_id)
            resolved[txn_id] = decision
        return resolved

    def resolve_in_doubt(self) -> dict[tuple[int, int], str]:
        """Run the termination protocol on every worker; returns
        ``{(worker, txn): decision}`` for all transactions converged."""
        out: dict[tuple[int, int], str] = {}
        for w in sorted(self.nodes):
            for txn_id, decision in self.recover_worker(w).items():
                out[(w, txn_id)] = decision
        return out

    def undo_from_wal(self, worker_id: int, txn_id: int) -> None:
        """Logical undo driven purely by WAL before/after images — the
        path a worker takes when its in-memory transaction state died
        with it (crash recovery), mirroring ARIES logical undo."""
        node = self.nodes[worker_id]
        recs = [
            r
            for r in node.log.records()
            if r.txn == txn_id
            and r.kind == UPDATE
            and r.page
            and r.page[0] == "logical"
        ]
        for rec in reversed(recs):
            _, table, _w = rec.page
            storage = self.db.workers[worker_id].storage.get(table)
            if storage is None:
                continue
            op = (rec.info or {}).get("op")
            if op == "insert":
                self._delete_exact(storage, RowBatch.from_bytes(rec.after))
            elif op == "delete":
                storage.insert(RowBatch.from_bytes(rec.before))
            elif op == "update":
                self._delete_exact(storage, RowBatch.from_bytes(rec.after))
                storage.insert(RowBatch.from_bytes(rec.before))

    # -- metadata transactions (coordinator sync, paper §VI) --------------------------------
    def metadata_commit(self, mutate, coordinator: int = 0) -> bool:
        """Apply a metadata mutation on all coordinator replicas under 2PC.

        ``mutate(coordinator_obj)`` must raise to vote NO. All replicas
        prepare (apply + validate) before any commits; on any failure all
        roll back to their snapshot.
        """
        txn_id = next(_txn_ids)
        snapshots = {c.coord_id: c.catalog.snapshot() for c in self.db.coordinators}

        class _CoordParticipant:
            def __init__(self, coord, system):
                self.node_id = coord.coord_id
                self.coord = coord
                self.failed = False

            def prepare(self, txn: int, coordinator: int) -> bool:
                try:
                    mutate(self.coord)
                    return True
                except Exception:
                    self.failed = True
                    return False

            def commit(self, txn: int) -> None:
                pass

            def rollback(self, txn: int) -> None:
                self.coord.catalog.restore(snapshots[self.node_id])

        participants = {
            c.coord_id: _CoordParticipant(c, self) for c in self.db.coordinators
        }
        xa = self.xa[self.db.coord_ids[coordinator]]
        return xa.commit(txn_id, participants)
