"""Executable baseline engines (Hive-, Spark-, Greenplum-style)."""

from .engines import (
    BaselineIOStats,
    MapReduceStyleExecutor,
    MPPStyleExecutor,
    SparkStyleExecutor,
)

__all__ = [
    "MapReduceStyleExecutor",
    "SparkStyleExecutor",
    "MPPStyleExecutor",
    "BaselineIOStats",
]
