"""Executable baseline engines over the same cluster substrate.

Each comparator in the paper's evaluation is reproduced as a variant of
the distributed executor that re-introduces exactly the bottleneck the
paper attributes to it — on the *same* storage, data, and network — so
differences in measured behaviour (bytes written to disk, connection
counts, sort work) are caused by the mechanism, not by unrelated code:

* :class:`MapReduceStyleExecutor` (Hive 1.x on MapReduce): the shuffle is
  **blocking and sort-based** — every producer sorts its outgoing
  partition by key and writes it to local disk; consumers read the files
  back before processing. Additionally every stage boundary (gather)
  materializes its input to the distributed-filesystem stand-in.
* :class:`SparkStyleExecutor` (Spark SQL 1.6): pipelined within stages,
  but shuffle data is still **written to shuffle files** (no sort), per
  Spark's default shuffle behaviour the paper calls out.
* :class:`MPPStyleExecutor` (Greenplum 4.3): fully pipelined in-memory
  shuffle like HRDBMS, but over a **direct all-to-all interconnect** —
  every node opens a connection to every other node (no ``N_max`` bound,
  no hub forwarding) — and without predicate-based data skipping or
  Bloom-filtered shuffles.

These run real queries; the analytic performance model
(:mod:`repro.bench.model`) uses the same mechanism switches to project
the paper's cluster sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.batch import RowBatch
from ..core.executor import DistributedExecutor, SiteData, _value_hash
from ..core.kernels import sort_indices
from ..optimizer.physical import PhysOp
from ..sql.ast import ColumnRef
from ..sql.compiler import compile_expr


@dataclass
class BaselineIOStats:
    """Disk traffic the baseline generated that HRDBMS would not."""

    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    stage_bytes_written: int = 0
    sort_rows: int = 0


class _DiskShuffleMixin:
    """Shared machinery: write shuffle partitions to worker-local files."""

    sort_before_write = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.io_stats = BaselineIOStats()
        self._file_seq = 0

    def _spill_roundtrip(self, worker_id: int, batch: RowBatch, kind: str) -> RowBatch:
        """Write a batch to the worker's disk and read it back (the
        materialization the paper blames for Hive/Spark per-node cost)."""
        fs = self.workers[worker_id].fs
        self._file_seq += 1
        path = f"temp/{kind}{self._file_seq}.part"
        blob = batch.to_bytes()
        fh = fs.open(path)
        fh.pwrite(0, blob)
        if kind == "shuffle":
            self.io_stats.shuffle_bytes_written += len(blob)
        else:
            self.io_stats.stage_bytes_written += len(blob)
        data = fh.pread(0, fh.size())
        fh.close()
        fs.delete(path)
        if kind == "shuffle":
            self.io_stats.shuffle_bytes_read += len(data)
        return RowBatch.from_bytes(data[: len(blob)])

    def _eval_shuffle(self, op: PhysOp, prefilter=None) -> SiteData:
        # baselines do not use Bloom-filtered shuffles
        child_op = op.children[0]
        child = self._eval(child_op)
        key_exprs = op.attrs["key_exprs"]
        n = len(self.worker_ids)
        compiled = [compile_expr(e, child_op.schema) for e in key_exprs]
        outgoing: dict[int, dict[int, list[RowBatch]]] = {
            w: {d: [] for d in self.worker_ids} for w in self.worker_ids
        }
        for src, batches in child.items():
            for batch in batches:
                if batch.length == 0:
                    continue
                arrays = [np.asarray(c.fn(batch)) for c in compiled]
                codes = _value_hash(arrays)
                dest_idx = (codes % np.uint64(n)).astype(np.int64)
                for d in range(n):
                    part = batch.filter(dest_idx == d)
                    if part.length:
                        outgoing[src][self.worker_ids[d]].append(part)
        out: SiteData = {w: [] for w in self.worker_ids}
        for src in self.worker_ids:
            for dest, parts in outgoing[src].items():
                if not parts:
                    continue
                merged = RowBatch.concat(op.schema, parts)
                if self.sort_before_write and key_exprs:
                    keys = [
                        (str(e), True)
                        for e in key_exprs
                        if isinstance(e, ColumnRef) and str(e) in merged.schema
                    ]
                    if keys:
                        merged = merged.take(sort_indices(merged, keys))
                        self.io_stats.sort_rows += merged.length
                # blocking, disk-materialized shuffle write on the sender
                merged = self._spill_roundtrip(src, merged, "shuffle")
                payload = merged.to_bytes()
                if dest == src:
                    out[dest].append(merged)
                else:
                    self._route(src, dest, payload, f"shuf{op.id}")
        for w in self.worker_ids:
            for _, _, payload in self.net.recv_all(w, f"shuf{op.id}"):
                out[w].append(RowBatch.from_bytes(payload))
        return out

    def _route(self, src: int, dest: int, payload: bytes, tag: str) -> None:
        self.net.route_send(self.ntm, src, dest, payload, tag)


class MapReduceStyleExecutor(_DiskShuffleMixin, DistributedExecutor):
    """Hive-on-MapReduce behaviour: sorted, materialized, blocking shuffle
    plus per-stage DFS materialization."""

    sort_before_write = True

    def _eval_gather(self, op: PhysOp) -> SiteData:
        result = super()._eval_gather(op)
        # MapReduce writes reducer output to the DFS at every job boundary
        out: SiteData = {}
        for site, batches in result.items():
            out[site] = [
                self._spill_roundtrip(
                    site if site in self.workers else self.worker_ids[0], b, "stage"
                )
                for b in batches
            ]
        return out


class SparkStyleExecutor(_DiskShuffleMixin, DistributedExecutor):
    """Spark SQL 1.6 behaviour: unsorted but disk-materialized shuffle."""

    sort_before_write = False


class MPPStyleExecutor(DistributedExecutor):
    """Greenplum-style MPP: pipelined in-memory shuffle over a direct
    all-to-all interconnect (each node talks to every other node)."""

    def _route_send_direct(self, src: int, dest: int, payload: bytes, tag: str) -> None:
        self.net.send(src, dest, payload, tag)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # replace topology routing with direct sends: O(n) connections/node
        self.ntm = _DirectTopology(self.worker_ids)
        self.tree = _DirectTopology([self.coord_id] + self.worker_ids, root=self.coord_id)

    def _build_bloom_prefilter(self, *a, **kw):  # Greenplum 4.3: no bloom shuffle
        return None


class _DirectTopology:
    """Degenerate topology: every pair is adjacent (for MPP baselines)."""

    def __init__(self, nodes, root=None):
        self.nodes = tuple(nodes)
        self._root = root if root is not None else self.nodes[0]

    def route(self, src: int, dst: int) -> list[int]:
        return [dst]

    def neighbors(self, node: int) -> set[int]:
        return set(self.nodes) - {node}

    def degree(self, node: int) -> int:
        return len(self.nodes) - 1

    @property
    def max_degree(self) -> int:
        return len(self.nodes) - 1

    # tree-gather interface used by DistributedExecutor._tree_gather
    @property
    def root(self) -> int:
        return self._root

    def parent(self, node: int):
        return None if node == self._root else self._root

    def children(self, node: int) -> list[int]:
        return [n for n in self.nodes if n != self._root] if node == self._root else []

    def levels(self) -> list[list[int]]:
        return [[self._root], [n for n in self.nodes if n != self._root]]
