"""Per-worker health tracking for blacklist, probation, and drain.

The executor records every scan probe outcome here. A worker that fails
``blacklist_after`` consecutive probes is blacklisted: reads of
*replicated* tables stop probing it and go straight to a healthy replica
(graceful degradation instead of a query restart). Partitioned tables
keep probing — the data lives only there.

Blacklisting is not permanent. A blacklisted worker enters a
*half-open* cycle: after every ``probe_interval`` avoided reads the
tracker lets one probe through (:meth:`allow_probe`). A successful
probe moves the worker to **probation**; it re-earns live traffic only
after ``probe_after`` consecutive successes, and any failure along the
way sends it straight back to the blacklist. This is the classic
circuit-breaker shape: a flapping worker keeps tripping the breaker,
a genuinely recovered one climbs back in bounded time.

Elastic membership adds a third state: **draining**. A draining worker
is being removed from the placement map; replicated reads route around
it immediately (no probes — it is leaving, not sick) while partitioned
reads keep working until the rebalance moves its fragments away.
"""

from __future__ import annotations

import threading

HEALTHY = "healthy"
BLACKLISTED = "blacklisted"
PROBATION = "probation"


class WorkerHealthTracker:
    """Thread-safe: shared across concurrent queries so one query's
    failed probes steer every query away from the sick worker."""

    def __init__(
        self,
        blacklist_after: int = 3,
        probe_after: int = 2,
        probe_interval: int = 8,
    ):
        self.blacklist_after = max(1, blacklist_after)
        #: consecutive successes a blacklisted worker needs to re-earn traffic
        self.probe_after = max(1, probe_after)
        #: avoided reads between half-open probes of a blacklisted worker
        self.probe_interval = max(1, probe_interval)
        self._failures: dict[int, int] = {}
        #: consecutive successes since blacklisting (probation progress)
        self._successes: dict[int, int] = {}
        #: avoided reads since the last half-open probe
        self._skips: dict[int, int] = {}
        #: workers being drained out of the placement map
        self._draining: set[int] = set()
        self._mu = threading.Lock()
        #: called (outside the lock) as listener(worker, old_state,
        #: new_state) on every breaker transition — the Database points
        #: this at the flight recorder
        self.listener = None

    def _state_locked(self, worker: int) -> str:
        if self._failures.get(worker, 0) < self.blacklist_after:
            return HEALTHY
        return PROBATION if self._successes.get(worker, 0) > 0 else BLACKLISTED

    def _notify(self, worker: int, old: str, new: str) -> None:
        if old != new and self.listener is not None:
            self.listener(worker, old, new)

    def record_failure(self, worker: int) -> None:
        with self._mu:
            old = self._state_locked(worker)
            self._failures[worker] = self._failures.get(worker, 0) + 1
            self._successes.pop(worker, None)  # probation progress resets
            new = self._state_locked(worker)
        self._notify(worker, old, new)

    def record_success(self, worker: int) -> None:
        with self._mu:
            old = self._state_locked(worker)
            fails = self._failures.get(worker, 0)
            if fails < self.blacklist_after:
                # healthy: a success clears transient failure noise
                self._failures.pop(worker, None)
                return
            # blacklisted: successes accumulate toward re-earning traffic
            n = self._successes.get(worker, 0) + 1
            if n >= self.probe_after:
                self._failures.pop(worker, None)
                self._successes.pop(worker, None)
                self._skips.pop(worker, None)
            else:
                self._successes[worker] = n
            new = self._state_locked(worker)
        self._notify(worker, old, new)

    def failures(self, worker: int) -> int:
        with self._mu:
            return self._failures.get(worker, 0)

    def is_blacklisted(self, worker: int) -> bool:
        with self._mu:
            return self._failures.get(worker, 0) >= self.blacklist_after

    def state(self, worker: int) -> str:
        with self._mu:
            if self._failures.get(worker, 0) < self.blacklist_after:
                return HEALTHY
            return PROBATION if self._successes.get(worker, 0) > 0 else BLACKLISTED

    def allow_probe(self, worker: int) -> bool:
        """Half-open gate, consulted when a read is about to avoid a
        blacklisted worker: every ``probe_interval``-th call (and every
        call once the worker is in probation) lets one probe through so
        a recovered worker can re-earn traffic."""
        with self._mu:
            if self._failures.get(worker, 0) < self.blacklist_after:
                return True
            if self._successes.get(worker, 0) > 0:
                return True  # probation: keep probing until re-earned
            n = self._skips.get(worker, 0) + 1
            if n >= self.probe_interval:
                self._skips[worker] = 0
                return True
            self._skips[worker] = n
            return False

    def blacklisted(self) -> set[int]:
        with self._mu:
            return {w for w, n in self._failures.items() if n >= self.blacklist_after}

    # -- draining (elastic membership) ----------------------------------------
    def mark_draining(self, worker: int) -> None:
        with self._mu:
            self._draining.add(worker)

    def clear_draining(self, worker: int) -> None:
        with self._mu:
            self._draining.discard(worker)

    def is_draining(self, worker: int) -> bool:
        with self._mu:
            return worker in self._draining

    def draining(self) -> set[int]:
        with self._mu:
            return set(self._draining)

    def reset(self) -> None:
        with self._mu:
            self._failures.clear()
            self._successes.clear()
            self._skips.clear()
            self._draining.clear()
