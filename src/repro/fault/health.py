"""Per-worker health tracking for blacklist-and-failover.

The executor records every scan probe outcome here. A worker that fails
``blacklist_after`` consecutive probes is blacklisted: reads of
*replicated* tables stop probing it and go straight to a healthy replica
(graceful degradation instead of a query restart). Partitioned tables
keep probing — the data lives only there — and a successful probe clears
the blacklist, so recovered nodes rejoin automatically.
"""

from __future__ import annotations

import threading


class WorkerHealthTracker:
    """Thread-safe: shared across concurrent queries so one query's
    failed probes steer every query away from the sick worker."""

    def __init__(self, blacklist_after: int = 3):
        self.blacklist_after = max(1, blacklist_after)
        self._failures: dict[int, int] = {}
        self._mu = threading.Lock()

    def record_failure(self, worker: int) -> None:
        with self._mu:
            self._failures[worker] = self._failures.get(worker, 0) + 1

    def record_success(self, worker: int) -> None:
        with self._mu:
            self._failures.pop(worker, None)

    def failures(self, worker: int) -> int:
        with self._mu:
            return self._failures.get(worker, 0)

    def is_blacklisted(self, worker: int) -> bool:
        with self._mu:
            return self._failures.get(worker, 0) >= self.blacklist_after

    def blacklisted(self) -> set[int]:
        with self._mu:
            return {w for w, n in self._failures.items() if n >= self.blacklist_after}

    def reset(self) -> None:
        with self._mu:
            self._failures.clear()
