"""Deterministic fault injection (the chaos substrate).

The paper treats node and link failure as routine (§I: a mid-query
worker failure aborts the query and the coordinator restarts it;
§VI: hierarchical 2PC with presumed abort). This package supplies the
correctness tooling that lets every layer prove it survives those
events: a seeded :class:`FaultSchedule` describing *when* nodes crash,
links drop, and messages duplicate, and a :class:`FaultInjector` that
:class:`~repro.network.simnet.SimNetwork` consults on every send and
receive. All injected events land in a chaos event log so tests can
assert not only that results are correct but that the faults actually
fired.
"""

from .health import WorkerHealthTracker
from .injector import ChaosEvent, FaultInjector
from .schedule import CrashWindow, FaultSchedule, NetworkPartition

__all__ = [
    "ChaosEvent",
    "CrashWindow",
    "FaultInjector",
    "FaultSchedule",
    "NetworkPartition",
    "WorkerHealthTracker",
]
