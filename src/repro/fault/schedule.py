"""Seeded, deterministic fault schedules.

A :class:`FaultSchedule` is a pure value describing the faults a run
should experience. Time is the injector's *fault clock*: a counter that
advances once per consulted network/operator event, never wall-clock, so
the same schedule replayed against the same call sequence produces
byte-identical fault histories.

Two kinds of trigger coexist:

* **windows** — :class:`CrashWindow` / :class:`NetworkPartition` fire at
  an absolute fault-clock tick and (optionally) heal after a duration;
* **probabilities** — per-message drop / duplicate / reorder draws from
  a ``random.Random(seed)`` stream, deterministic for a fixed schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..common.errors import ConfigError


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` goes down at fault-clock tick ``at``.

    ``duration`` is the number of ticks until the node recovers;
    ``None`` means the crash is permanent.
    """

    node: int
    at: int
    duration: int | None = None

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError("crash window trigger must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ConfigError("crash window duration must be >= 1 (or None)")


@dataclass(frozen=True)
class NetworkPartition:
    """Messages between ``side_a`` and ``side_b`` fail while active."""

    side_a: frozenset[int]
    side_b: frozenset[int]
    at: int
    duration: int

    def __post_init__(self):
        if set(self.side_a) & set(self.side_b):
            raise ConfigError("partition sides must be disjoint")
        if self.duration < 1:
            raise ConfigError("partition duration must be >= 1")

    def severs(self, src: int, dst: int) -> bool:
        return (src in self.side_a and dst in self.side_b) or (
            src in self.side_b and dst in self.side_a
        )


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that will go wrong, and when.

    Probabilities are per message-send attempt:

    * ``drop_prob`` — the link resets: the send raises
      :class:`~repro.common.errors.NetworkError` (the sender *knows*, so
      retry/backoff can recover it);
    * ``silent_drop_prob`` — the message vanishes without an error (only
      detectable from the chaos log; used to test observability, not
      query correctness);
    * ``dup_prob`` — the message is delivered twice (receivers dedup by
      message id);
    * ``delay_prob`` — the message lands at a random position in the
      destination inbox instead of the tail (pure reordering, never loss).
    """

    seed: int = 0
    crashes: tuple[CrashWindow, ...] = ()
    partitions: tuple[NetworkPartition, ...] = ()
    drop_prob: float = 0.0
    silent_drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0

    def __post_init__(self):
        for name in ("drop_prob", "silent_drop_prob", "dup_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")

    @classmethod
    def none(cls) -> "FaultSchedule":
        """The empty schedule: attach for canonical delivery order with
        zero injected faults (the chaos harness's fault-free baseline)."""
        return cls()

    @classmethod
    def chaos(
        cls,
        seed: int,
        nodes: Sequence[int],
        intensity: float = 1.0,
        max_crashes: int = 2,
        crash_horizon: int = 60,
        max_crash_duration: int = 50,
    ) -> "FaultSchedule":
        """A randomized-but-reproducible schedule for the given nodes.

        Every fault it injects is *recoverable*: crashes heal, drops are
        loud (retryable), duplicates are deduplicated — so a run under
        ``chaos`` must converge to the fault-free result.
        """
        rng = random.Random(seed)
        pool = list(nodes)
        crashes = []
        for _ in range(rng.randint(1, max(1, max_crashes))):
            if not pool:
                break
            node = rng.choice(pool)
            crashes.append(
                CrashWindow(
                    node=node,
                    at=rng.randint(2, max(3, crash_horizon)),
                    duration=rng.randint(10, max(11, max_crash_duration)),
                )
            )
        return cls(
            seed=seed,
            crashes=tuple(crashes),
            drop_prob=round(rng.uniform(0.0, 0.08) * intensity, 4),
            dup_prob=round(rng.uniform(0.0, 0.12) * intensity, 4),
            delay_prob=round(rng.uniform(0.0, 0.20) * intensity, 4),
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for c in self.crashes:
            dur = "forever" if c.duration is None else f"{c.duration}t"
            parts.append(f"crash(node={c.node}@{c.at} for {dur})")
        for p in self.partitions:
            parts.append(
                f"partition({sorted(p.side_a)}|{sorted(p.side_b)}@{p.at} for {p.duration}t)"
            )
        for name in ("drop_prob", "silent_drop_prob", "dup_prob", "delay_prob"):
            v = getattr(self, name)
            if v:
                parts.append(f"{name}={v}")
        return " ".join(parts)
