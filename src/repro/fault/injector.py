"""The fault injector: the chaos substrate's runtime half.

A :class:`FaultInjector` owns the *fault clock* (one tick per consulted
network/operator event), fires the schedule's crash/partition windows,
draws the per-message drop/duplicate/reorder faults, and records every
injected event in a chaos event log.

:class:`~repro.network.simnet.SimNetwork` consults it on every
``send``/``route_send``/``recv_all``; the executor consults it before
every worker scan (``on_op``). Attaching an injector — even one with the
empty schedule — also switches the network to canonical delivery order
(messages sorted by ``(src, send order)`` at receive), so a faulted run
and a fault-free baseline see identical message orderings and can be
compared byte-for-byte.

Tests may also steer faults imperatively with :meth:`crash_now` /
:meth:`recover_now` when a scenario needs phase-exact timing.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass

from ..common.errors import NetworkError, WorkerFailureError
from .schedule import FaultSchedule


@dataclass(frozen=True)
class ChaosEvent:
    """One injected (or observed) fault, stamped with the fault clock."""

    tick: int
    kind: str  # crash | recover | drop | silent_drop | duplicate | delay |
    #            partition_drop | send_to_down | send_from_down | recv_down |
    #            hub_down | op_on_down | dedup | retry | failover | blacklist
    node: int | None = None
    src: int | None = None
    dst: int | None = None
    tag: str = ""
    detail: str = ""


class FaultInjector:
    """Thread-safe: the fault clock, RNG, and event log sit behind one
    reentrant lock so concurrent queries can consult the injector from
    their own threads (the network calls in while holding its own lock;
    the injector never calls back out, so lock order is acyclic)."""

    def __init__(self, schedule: FaultSchedule | None = None):
        self.schedule = schedule or FaultSchedule.none()
        self.tick = 0
        self.events: list[ChaosEvent] = []
        self._rng = random.Random(self.schedule.seed)
        #: node -> recovery tick (None = permanent)
        self._down: dict[int, int | None] = {}
        self._fired: set[int] = set()  # indices of crash windows already fired
        self._mu = threading.RLock()
        #: optional callback(ChaosEvent); Database wires the tracer in
        #: here so chaos events land inline on the active query's spans
        self.listener = None

    # -- the fault clock ---------------------------------------------------------
    def advance(self, n: int = 1) -> None:
        with self._mu:
            for _ in range(n):
                self.tick += 1
                self._apply_windows()

    def _apply_windows(self) -> None:
        for node, until in list(self._down.items()):
            if until is not None and self.tick >= until:
                del self._down[node]
                self.record("recover", node=node)
        for i, cw in enumerate(self.schedule.crashes):
            if i not in self._fired and self.tick >= cw.at:
                self._fired.add(i)
                self._set_down(cw.node, cw.duration)

    def _set_down(self, node: int, duration: int | None) -> None:
        self._down[node] = None if duration is None else self.tick + duration
        dur = "forever" if duration is None else f"{duration}t"
        self.record("crash", node=node, detail=f"down for {dur}")

    # -- imperative control (tests) ----------------------------------------------
    def crash_now(self, node: int, duration: int | None = None) -> None:
        with self._mu:
            self._set_down(node, duration)

    def recover_now(self, node: int) -> None:
        with self._mu:
            if node in self._down:
                del self._down[node]
                self.record("recover", node=node, detail="forced")

    # -- state queries -----------------------------------------------------------
    def node_down(self, node: int) -> bool:
        return node in self._down

    def link_cut(self, src: int, dst: int) -> bool:
        for p in self.schedule.partitions:
            if p.at <= self.tick < p.at + p.duration and p.severs(src, dst):
                return True
        return False

    # -- hooks the network/executor consult --------------------------------------
    def on_op(self, worker: int, op: object) -> None:
        """Called before a worker executes a scan; one fault-clock tick."""
        with self._mu:
            self.advance()
            if self.node_down(worker):
                self.record("op_on_down", node=worker, detail=f"op={getattr(op, 'op', op)!r}")
                raise WorkerFailureError(worker, f"chaos: worker {worker} is down")

    def on_send(self, src: int, dst: int, size: int, tag: str) -> int:
        """Consulted per send attempt; returns the number of copies to
        deliver (0 = silent drop, 2 = duplicate) or raises."""
        with self._mu:
            self.advance()
            if self.node_down(src):
                self.record("send_from_down", node=src, src=src, dst=dst, tag=tag)
                raise WorkerFailureError(src, f"chaos: sender {src} is down")
            if self.node_down(dst):
                self.record("send_to_down", node=dst, src=src, dst=dst, tag=tag)
                raise WorkerFailureError(dst, f"chaos: destination {dst} is down")
            if self.link_cut(src, dst):
                self.record("partition_drop", src=src, dst=dst, tag=tag)
                raise NetworkError(f"chaos: network partition severs {src} -> {dst}")
            s = self.schedule
            if s.drop_prob and self._rng.random() < s.drop_prob:
                self.record("drop", src=src, dst=dst, tag=tag, detail=f"{size}B")
                raise NetworkError(f"chaos: link {src} -> {dst} dropped a {size}B message")
            if s.silent_drop_prob and self._rng.random() < s.silent_drop_prob:
                self.record("silent_drop", src=src, dst=dst, tag=tag, detail=f"{size}B")
                return 0
            if s.dup_prob and self._rng.random() < s.dup_prob:
                self.record("duplicate", src=src, dst=dst, tag=tag)
                return 2
            return 1

    def on_hop(self, hub: int, src: int, dst: int, tag: str) -> None:
        """Consulted for each intermediate node on a routed send."""
        with self._mu:
            if self.node_down(hub):
                self.record("hub_down", node=hub, src=src, dst=dst, tag=tag)
                raise NetworkError(f"chaos: hub {hub} on route {src} -> {dst} is down")

    def on_recv(self, node: int) -> None:
        with self._mu:
            if self.node_down(node):
                self.record("recv_down", node=node)
                raise WorkerFailureError(node, f"chaos: node {node} is down; cannot receive")

    def reorder_position(self, inbox_len: int) -> int | None:
        """Delay fault: a non-tail insertion position, or None (append)."""
        with self._mu:
            s = self.schedule
            if inbox_len and s.delay_prob and self._rng.random() < s.delay_prob:
                pos = self._rng.randrange(inbox_len)
                self.record("delay", detail=f"inserted at {pos}/{inbox_len}")
                return pos
            return None

    # -- the chaos event log -----------------------------------------------------
    def record(self, kind: str, **kw) -> None:
        with self._mu:
            ev = ChaosEvent(tick=self.tick, kind=kind, **kw)
            self.events.append(ev)
            listener = self.listener
        if listener is not None:
            listener(ev)

    def summary(self) -> dict[str, int]:
        return dict(Counter(e.kind for e in self.events))

    def events_of(self, *kinds: str) -> list[ChaosEvent]:
        return [e for e in self.events if e.kind in kinds]
