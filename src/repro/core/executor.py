"""Distributed query executor.

Interprets a Phase-3 physical plan over the simulated cluster: every
``workers``-site operator runs SPMD (one instance per worker against
that worker's partition), exchanges move *real serialized batches*
through the simulated network along the paper's topologies —

* **shuffle** re-partitions rows by key hash and routes each batch
  through the binomial-graph n-to-m topology (hub forwarding and the
  ``N_max`` connection bound are therefore real, measurable effects);
* **gather** moves worker outputs up the tree topology to the
  coordinator, combining partial aggregates / merging sorted runs /
  folding top-k heaps *at every internal tree node* (the Dremel-style
  serving-tree generalization the paper describes);
* **broadcast** replicates a relation to all workers.

Hash joins take Bloom filters built from the build side and apply them
on the probe side *before* its shuffle routes data, reproducing the
paper's communication-reduction technique. Operator inputs are buffered
in spillable lists governed by the per-worker memory budget.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..common.batch import RowBatch, hash_value_arrays
from ..common.config import ClusterConfig
from ..common.dtypes import DataType
from ..common.errors import ExecutionError, NetworkError, WorkerFailureError
from ..common.schema import Schema
from ..fault.health import WorkerHealthTracker
from ..network.simnet import SimNetwork
from ..network.topology import BinomialGraphTopology, TreeTopology
from ..optimizer.logical import AggSpec
from ..optimizer.physical import COORD, WORKERS, PhysOp
from ..sql.ast import ColumnRef, Expr
from ..sql.compiler import compile_expr, compile_predicate, to_scan_predicate
from ..storage.table import ScanBloom, ScanStats, TableStorage
from .kernels import (
    JoinHashTable,
    bloom_filter_codes,
    bloom_filter_test,
    sort_indices,
    top_k,
)
from .pipeline import (
    FusedChain,
    InflightTracker,
    MorselScheduler,
    PipelineMetrics,
    apply_steps,
    coalesce_batches,
    fuse_chain,
    run_tasks_ordered,
)
from .reference import (
    _combine,
    aggregate_batch,
    distinct_batch,
    hash_join,
    project_batch,
)
from .spill import MemoryGovernor, SpillableList
from ..telemetry.profile import OpProfile
from ..telemetry.trace import Tracer
from ..util.fs import FileSystem


@dataclass
class WorkerRuntime:
    """Per-worker execution context handed to the executor."""

    worker_id: int
    fs: FileSystem
    storage: dict[str, TableStorage]
    governor: MemoryGovernor
    external: dict[str, object] = field(default_factory=dict)
    #: degree of parallelism the worker grants (resource-management L2)
    effective_dop: int = 2
    #: live DOP source (the worker's resource monitor); overrides
    #: ``effective_dop`` when present so throttling reacts to pressure
    dop_source: Optional[Callable[[], int]] = None

    def current_dop(self) -> int:
        return self.dop_source() if self.dop_source is not None else self.effective_dop


@dataclass
class ExecStats:
    rows_scanned: int = 0
    pages_read: int = 0
    sets_skipped: int = 0
    sets_total: int = 0
    #: pages a plain decode scan would have read but skipping avoided
    pages_skipped: int = 0
    #: pages whose predicate atoms ran over the encoded representation
    pages_pushed_down: int = 0
    #: column pages served from a shared-scan leader's published arrays
    pages_shared: int = 0
    #: scans that attached to another query's in-flight page pass
    shared_attaches: int = 0
    #: column sets skipped by sideways-passed join-key Bloom filters
    sets_skipped_bloom: int = 0
    shuffle_bytes: int = 0
    network_bytes: int = 0
    network_messages: int = 0
    forwarded_bytes: int = 0
    max_connections: int = 0
    spilled_bytes: int = 0
    peak_memory: int = 0
    rows_returned: int = 0
    #: query restarts after mid-query worker failures
    restarts: int = 0
    #: transient send failures recovered by retry
    retries: int = 0
    #: simulated time spent in exponential backoff between retries, seconds
    backoff_time: float = 0.0
    #: workers that failed (probe or send) at any point during the query
    failed_workers: tuple = ()
    #: fused morsel-driven pipelines built for the query
    pipelines: int = 0
    #: operators folded into those pipelines (scans included)
    fused_ops: int = 0
    #: morsel tasks executed (one per table fragment per site)
    morsels: int = 0
    #: peak batches produced by morsel tasks but not yet consumed
    peak_inflight_batches: int = 0
    #: measured wall-seconds of morsel-task work per serving worker — the
    #: data-parallel portion a real cluster runs on the worker machines
    #: (feeds the concurrency bench's modeled-throughput computation and
    #: exposes worker busy-time skew)
    site_busy_s: dict = field(default_factory=dict)
    #: measured wall-seconds of work only the coordinator can do (final
    #: combines, result decode); the counterpart of ``site_busy_s`` that
    #: the reduce tree is meant to shrink
    coord_busy_s: float = 0.0

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Fold another attempt's (or fragment's) stats into this one.

        Every place that combines stats across query restarts goes
        through here instead of ad-hoc field twiddling: additive
        counters sum, high-water marks take the max, ``failed_workers``
        is the sorted union, and result-shaped fields
        (``rows_returned``) take ``other``'s value — the later attempt
        is the one that produced the answer. Returns ``self``.
        """
        self.rows_scanned += other.rows_scanned
        self.pages_read += other.pages_read
        self.sets_skipped += other.sets_skipped
        self.sets_total += other.sets_total
        self.pages_skipped += other.pages_skipped
        self.pages_pushed_down += other.pages_pushed_down
        self.pages_shared += other.pages_shared
        self.shared_attaches += other.shared_attaches
        self.sets_skipped_bloom += other.sets_skipped_bloom
        self.shuffle_bytes += other.shuffle_bytes
        self.network_bytes += other.network_bytes
        self.network_messages += other.network_messages
        self.forwarded_bytes += other.forwarded_bytes
        self.spilled_bytes += other.spilled_bytes
        self.restarts += other.restarts
        self.retries += other.retries
        self.backoff_time += other.backoff_time
        self.pipelines += other.pipelines
        self.fused_ops += other.fused_ops
        self.morsels += other.morsels
        self.max_connections = max(self.max_connections, other.max_connections)
        self.peak_memory = max(self.peak_memory, other.peak_memory)
        self.peak_inflight_batches = max(
            self.peak_inflight_batches, other.peak_inflight_batches
        )
        self.rows_returned = other.rows_returned
        self.failed_workers = tuple(
            sorted(set(self.failed_workers) | set(other.failed_workers))
        )
        merged = dict(self.site_busy_s)
        for site, s in other.site_busy_s.items():
            merged[site] = merged.get(site, 0.0) + s
        self.site_busy_s = merged
        self.coord_busy_s += other.coord_busy_s
        return self


SiteData = dict[int, list[RowBatch]]


@dataclass
class _ChainRun:
    """Per-execution state of one fused chain: the per-op row accumulator
    and, for chains with fused hash joins, each site's probe closures
    (op id → batch transformer over that site's build-once hash table)."""

    counts: dict[int, int]
    probes: dict[int, dict[int, Callable[[RowBatch], RowBatch]]]
    #: (site, scan op id) → join-key ScanBlooms passed sideways into
    #: that site's storage scan (built from the site-local build
    #: partitions, plus any global bloom a shuffle prefilter shipped)
    blooms: dict[tuple[int, int], list] = field(default_factory=dict)


class DistributedExecutor:
    def __init__(
        self,
        workers: dict[int, WorkerRuntime],
        coord_id: int,
        net: SimNetwork,
        config: ClusterConfig,
    ):
        self.workers = workers
        self.worker_ids = sorted(workers)
        self.coord_id = coord_id
        self.net = net
        self.config = config
        self.ntm = BinomialGraphTopology(self.worker_ids, config.n_max)
        self.tree = TreeTopology([coord_id] + self.worker_ids, config.n_max, root=coord_id)
        self._scan_stats = ScanStats()
        #: test/ops hook: called as fault_injector(worker_id, op) before
        #: each worker-scan; may raise WorkerFailureError to simulate a
        #: mid-query node failure
        self.fault_injector = None
        #: actual output rows per physical-op id, from the last execute()
        self.op_rows: dict[int, int] = {}
        #: scan op id → ScanBlooms a shuffle-level prefilter wants pushed
        #: into that scan (consumed by _open_chain when the probe side's
        #: chain opens; per-query state, cleared by the prefilter builder)
        self._pending_scan_blooms: dict[int, list] = {}
        #: per-worker health (blacklist-and-failover for replicated reads);
        #: persists across queries so repeated failures accumulate, and
        #: across membership epochs (the Database re-installs it when it
        #: rebuilds the executor for a new placement)
        self.health = WorkerHealthTracker(
            config.blacklist_threshold, config.probe_after, config.probe_interval
        )
        #: placement epoch this executor serves; queries pin it via
        #: :meth:`for_query` so in-flight work finishes against the
        #: worker set and storages it planned under
        self.epoch = 0
        #: per-execute() fault counters (the database façade accumulates
        #: these across restart attempts)
        self.retries = 0
        self.backoff_time = 0.0
        self.failed_workers: set[int] = set()
        #: per-execute() pipelining observability
        self.pipe = PipelineMetrics()
        self.inflight = InflightTracker()
        #: exchange-tag namespace; "" for the serial/legacy path, set to
        #: "q<id>|" by :meth:`for_query` so concurrent queries' messages
        #: never cross-deliver
        self.qtag = ""
        #: shared cross-query morsel pool (None = private per-chain pool)
        self.scheduler: MorselScheduler | None = None
        #: per-execute() morsel busy time per serving worker, seconds
        self.site_busy_s: dict[int, float] = {}
        #: per-execute() coordinator-only busy time, seconds
        self.coord_busy_s = 0.0
        self._busy_mu = threading.Lock()
        #: query-lifecycle tracer (None = tracing disabled: the only cost
        #: at every instrumentation point is this attribute test)
        self.tracer: Tracer | None = None
        #: per-operator profiles for EXPLAIN ANALYZE ({} when profiling,
        #: None otherwise)
        self.op_prof: dict[int, OpProfile] | None = None
        #: virtual (sys.*) relation providers: table name -> () -> RowBatch,
        #: materialized on demand at the coordinator by ``_eval_sysscan``.
        #: Shared by reference across per-query clones — providers are
        #: read-only closures over cluster state.
        self.sys_tables: dict[str, object] = {}
        #: cluster flight recorder (None = not wired); chaos events land
        #: here even without an injector or tracer attached
        self.recorder = None

    def for_query(
        self, qid: int, coord_id: int | None = None, profiled: bool = False
    ) -> "DistributedExecutor":
        """A shallow per-query clone with isolated mutable state.

        Shared (by reference): workers (and their governors — aggregate
        memory pressure must see every query), the network, topologies,
        the health tracker, and the morsel scheduler. Fresh per clone:
        every counter ``execute`` mutates, plus a unique exchange-tag
        namespace. This is what lets multiple threads run ``execute``
        concurrently against one cluster.

        ``coord_id`` roots the query at a specific coordinator node
        (HRDBMS load-balances clients across replicated coordinators, so
        each session's gathers and final merges land on *its* coordinator,
        not a shared one); the gather tree is rebuilt around that root.
        """
        clone = copy.copy(self)
        clone.qtag = f"q{qid}|"
        if coord_id is not None and coord_id != self.coord_id:
            clone.coord_id = coord_id
            clone.tree = TreeTopology(
                [coord_id] + self.worker_ids, self.config.n_max, root=coord_id
            )
        clone._scan_stats = ScanStats()
        clone.op_rows = {}
        clone._pending_scan_blooms = {}
        clone.retries = 0
        clone.backoff_time = 0.0
        clone.failed_workers = set()
        clone.pipe = PipelineMetrics()
        clone.inflight = InflightTracker()
        clone.site_busy_s = {}
        clone.coord_busy_s = 0.0
        clone._busy_mu = threading.Lock()
        clone.op_prof = {} if profiled else None
        return clone

    def _note_busy(self, site: int, seconds: float) -> None:
        """Attribute wall time to the node that did the work: worker ids
        accrue to ``site_busy_s``, anything else (the coordinator) to
        ``coord_busy_s`` (morsel threads may race under ``morsel_dop >
        1``, hence the lock)."""
        with self._busy_mu:
            if site in self.workers:
                self.site_busy_s[site] = self.site_busy_s.get(site, 0.0) + seconds
            else:
                self.coord_busy_s += seconds

    # -- entry ---------------------------------------------------------------------
    def execute(self, plan: PhysOp, reset_governors: bool = True) -> tuple[RowBatch, ExecStats]:
        base = self.net.traffic_of(self.qtag)
        self._scan_stats = ScanStats()
        self.op_rows = {}
        self._pending_scan_blooms = {}
        if self.op_prof is not None:
            self.op_prof = {}  # a restarted attempt profiles afresh
        self.retries = 0
        self.backoff_time = 0.0
        self.failed_workers = set()
        self.pipe = PipelineMetrics()
        self.inflight = InflightTracker()
        self.site_busy_s = {}
        self.coord_busy_s = 0.0
        # spill is attributed by delta, never by reset — the counters are
        # shared with concurrent queries and must stay monotonic
        base_spill = sum(w.governor.spilled_bytes for w in self.workers.values())
        if reset_governors:
            # solo queries re-baseline peak so it reads per-query; under
            # concurrency peak stays cumulative (aggregate cluster pressure)
            for w in self.workers.values():
                w.governor.peak = w.governor.used
        data = self._eval(plan)
        if plan.site != COORD:
            raise ExecutionError("plan root must be on the coordinator")
        result = RowBatch.concat(plan.schema, data.get(self.coord_id, []))
        end = self.net.traffic_of(self.qtag)
        stats = ExecStats(
            rows_scanned=self._scan_stats.rows_out,
            pages_read=self._scan_stats.pages_read,
            sets_skipped=(
                self._scan_stats.sets_skipped_cache
                + self._scan_stats.sets_skipped_minmax
                + self._scan_stats.sets_skipped_index
                + self._scan_stats.sets_skipped_encoded
                + self._scan_stats.sets_skipped_bloom
            ),
            sets_total=self._scan_stats.sets_total,
            pages_skipped=self._scan_stats.pages_skipped,
            pages_pushed_down=self._scan_stats.pages_pushed_down,
            pages_shared=self._scan_stats.pages_shared,
            shared_attaches=self._scan_stats.shared_attaches,
            sets_skipped_bloom=self._scan_stats.sets_skipped_bloom,
            network_bytes=end.bytes - base.bytes,
            network_messages=end.messages - base.messages,
            forwarded_bytes=end.forwarded_bytes - base.forwarded_bytes,
            max_connections=self.net.max_connections(),
            spilled_bytes=sum(w.governor.spilled_bytes for w in self.workers.values())
            - base_spill,
            peak_memory=max(w.governor.peak for w in self.workers.values()),
            rows_returned=result.length,
            retries=self.retries,
            backoff_time=self.backoff_time,
            failed_workers=tuple(sorted(self.failed_workers)),
            pipelines=self.pipe.pipelines,
            fused_ops=self.pipe.fused_ops,
            morsels=self.pipe.morsels,
            peak_inflight_batches=self.inflight.peak,
            site_busy_s=dict(self.site_busy_s),
            coord_busy_s=self.coord_busy_s,
        )
        return result, stats

    # -- dispatch ------------------------------------------------------------------
    def _eval(self, op: PhysOp) -> SiteData:
        return self._traced(op, lambda: self._eval_impl(op))

    def _eval_impl(self, op: PhysOp) -> SiteData:
        if op.op in ("filter", "project", "hashjoin"):
            chain = self._chain_for(op, allow_bare_scan=False)
            if chain is not None:
                return self._run_chain_collect(chain)
        fn = getattr(self, f"_eval_{op.op}", None)
        if fn is None:
            raise ExecutionError(f"no evaluator for physical op {op.op!r}")
        return fn(op)

    #: exchange ops and their tag stems (span correlation across legs)
    _EXCHANGE_STEMS = {"shuffle": "shuf", "broadcast": "bcast", "gather": "gather"}

    def _traced(self, op: PhysOp, thunk: Callable[[], SiteData]) -> SiteData:
        """Run one operator with per-operator observability.

        Fast path (no tracer, no profiling): evaluate and record the row
        count, exactly the pre-telemetry behaviour. Otherwise wrap the
        evaluation in an ``operator`` span and/or fill an
        :class:`OpProfile` from before/after snapshots of the scan,
        traffic, and spill counters (inclusive of children, like every
        EXPLAIN ANALYZE).
        """
        tr = self.tracer
        prof = self.op_prof
        if tr is None and prof is None:
            out = thunk()
            self.op_rows[op.id] = sum(b.length for bs in out.values() for b in bs)
            return out
        sp = None
        if tr is not None:
            stem = self._EXCHANGE_STEMS.get(op.op)
            tag = f"{self.qtag}{stem}{op.id}" if stem else ""
            sp = tr.begin(op.op, cat="operator", tag=tag, op_id=op.id)
        t0 = time.perf_counter()
        base = self._prof_snapshot() if prof is not None else None
        try:
            out = thunk()
        except BaseException:
            if sp is not None:
                tr.end(sp, error=True)
            raise
        rows = sum(b.length for bs in out.values() for b in bs)
        self.op_rows[op.id] = rows
        if prof is not None:
            p = OpProfile(
                op_id=op.id,
                rows=rows,
                batches=sum(len(bs) for bs in out.values()),
                time_s=time.perf_counter() - t0,
            )
            self._prof_fill(p, base)
            prof[op.id] = p
        if sp is not None:
            tr.end(sp, rows=rows)
        return out

    def _prof_snapshot(self) -> tuple:
        """Counter snapshot for delta-attribution of one operator."""
        st = self._scan_stats
        traffic = self.net.traffic_of(self.qtag)
        spill = sum(w.governor.spilled_bytes for w in self.workers.values())
        skipped = (
            st.sets_skipped_cache
            + st.sets_skipped_minmax
            + st.sets_skipped_index
            + st.sets_skipped_encoded
            + st.sets_skipped_bloom
        )
        return (
            st.rows_out,
            st.pages_read,
            skipped,
            st.sets_total,
            traffic.bytes,
            spill,
            st.pages_skipped,
            st.pages_pushed_down,
            st.pages_shared,
        )

    def _prof_fill(self, p: OpProfile, base: tuple) -> None:
        after = self._prof_snapshot()
        p.scan_rows = after[0] - base[0]
        p.pages = after[1] - base[1]
        p.sets_skipped = after[2] - base[2]
        p.sets_total = after[3] - base[3]
        p.net_bytes = after[4] - base[4]
        p.spilled_bytes = after[5] - base[5]
        p.pages_skipped = after[6] - base[6]
        p.pages_pushed = after[7] - base[7]
        p.pages_shared = after[8] - base[8]

    # -- fused pipelines ------------------------------------------------------------
    def _chain_for(self, op: PhysOp, allow_bare_scan: bool) -> FusedChain | None:
        """A fused chain for ``op``'s subtree, or None to fall back to
        operator-at-a-time evaluation (``pipelined_execution=False``,
        non-linear shapes, or external tables the chain scanner cannot
        serve)."""
        if not self.config.pipelined_execution:
            return None
        chain = fuse_chain(op)
        if chain is None:
            return None
        if not allow_bare_scan and not chain.transforms:
            return None
        table = chain.scan.attrs["table"]
        if any(table in rt.external for rt in self.workers.values()):
            return None
        return chain

    def _scan_bloom_targets(self, chain: FusedChain, jop: PhysOp, pairs) -> dict[int, str]:
        """Map probe-key pair index → base column of the chain's scan.

        Walks each left (probe-side) key expression down through the
        chain's transforms *below* ``jop``: filters pass names through,
        projects must map the name to a plain column reference, and
        lower fused joins must source the name from their probe (left)
        side — any widening join preserves the value on every output
        copy, so scan-level dropping stays exact. Keys that survive to
        the scan resolve to the storage column the bloom can test.
        Returns {} when no key maps (pushdown silently off for this
        probe).
        """
        try:
            upto = chain.transforms.index(jop)
        except ValueError:
            upto = len(chain.transforms)
        out: dict[int, str] = {}
        scan_names = {c.name: c.unqualified for c in chain.scan.schema}
        for i, (le, _re) in enumerate(pairs):
            if not isinstance(le, ColumnRef):
                continue
            name = le.name
            ok = True
            for t in reversed(chain.transforms[:upto]):
                if t.op == "filter":
                    continue
                if t.op == "project":
                    expr = next(
                        (e for n, e in t.attrs["exprs"] if n == name), None
                    )
                    if not isinstance(expr, ColumnRef):
                        ok = False
                        break
                    name = expr.name
                elif t.op == "hashjoin":
                    if not any(c.name == name for c in t.children[0].schema):
                        ok = False  # key comes from the build side
                        break
                else:
                    ok = False
                    break
            if ok and name in scan_names:
                out[i] = scan_names[name]
        return out

    def _open_chain(self, chain: FusedChain) -> "_ChainRun":
        """Account a chain execution and prepare its per-run state.

        For every hash join fused into the chain, the *build* subtree is
        evaluated here (once per chain run, before any morsel starts),
        materialized per site, and turned into a per-site probe closure
        over a build-once :class:`JoinHashTable` — the morsel tasks then
        stream probe batches through those closures with no per-batch
        build or key-compile cost.
        """
        self.pipe.pipelines += 1
        self.pipe.fused_ops += chain.n_ops
        counts = {chain.scan.id: 0}
        for t in chain.transforms:
            counts[t.id] = 0
        probes: dict[int, dict[int, Callable[[RowBatch], RowBatch]]] = {
            w: {} for w in self.worker_ids
        }
        blooms: dict[tuple[int, int], list] = {}
        for jop in chain.probe_ops:
            right_op = jop.children[1]
            right = self._eval(right_op)
            kind = jop.attrs["kind"]
            pairs = jop.attrs["pairs"]
            residual = jop.attrs["residual"]
            lschema = jop.children[0].schema
            rschema = right_op.schema
            lkey_fns = [compile_expr(le, lschema).fn for le, _ in pairs]
            # sideways bloom pushdown: fused probes are co-partitioned or
            # broadcast, so site w's probe rows can only match site w's
            # build partition — a per-site bloom over that partition's
            # keys is exact per site and tighter than a global one. Only
            # inner/semi probes eliminate non-matching rows.
            push_targets: dict[int, str] = {}
            if (
                self.config.bloom_filters
                and self.config.bloom_scan_pushdown
                and jop.attrs.get("bloom")
                and pairs
                and kind in ("inner", "semi")
            ):
                push_targets = self._scan_bloom_targets(chain, jop, pairs)
            for w in self.worker_ids:
                t0 = time.perf_counter()
                rb = self._materialize(w, rschema, right.get(w, []))
                rkeys = [np.asarray(compile_expr(re, rschema).fn(rb)) for _, re in pairs]
                jht = JoinHashTable(rkeys)
                if push_targets:
                    site_bl = blooms.setdefault((w, chain.scan.id), [])
                    if rb.length == 0:
                        site_bl.append(ScanBloom(column="", drop_all=True))
                    else:
                        for i, col in push_targets.items():
                            site_bl.append(
                                ScanBloom(
                                    column=col,
                                    bits=bloom_filter_codes(
                                        hash_value_arrays([rkeys[i]])
                                    ),
                                )
                            )
                self._note_busy(w, time.perf_counter() - t0)
                probes[w][jop.id] = (
                    lambda lb, jop=jop, jht=jht, rb=rb, kind=kind, pairs=pairs,
                    residual=residual, lschema=lschema, rschema=rschema,
                    lkey_fns=lkey_fns: self._probe_batch(
                        jop, jht, lb, rb, kind, pairs, residual,
                        lschema, rschema, lkey_fns=lkey_fns,
                    )
                )
        pending = self._pending_scan_blooms.get(chain.scan.id)
        if pending:
            # a shuffle-level prefilter shipped a (global) build bloom —
            # every site's scan of this chain can test it too
            for w in self.worker_ids:
                blooms.setdefault((w, chain.scan.id), []).extend(pending)
        return _ChainRun(counts=counts, probes=probes, blooms=blooms)

    def _close_chain(self, run: "_ChainRun") -> None:
        """Publish fused per-op actuals for EXPLAIN ANALYZE."""
        for op_id, n in run.counts.items():
            self.op_rows[op_id] = n
            if self.op_prof is not None and op_id not in self.op_prof:
                # operators folded into a pipeline have no standalone
                # timing; their rows still show, flagged as fused
                self.op_prof[op_id] = OpProfile(op_id=op_id, rows=n, fused=True)

    def _coalesce(self, batches, schema: Schema):
        """Regroup streamed batches to full width (4x batch_size rows) so
        per-batch exchange and fold costs stay amortized; memory stays
        bounded by the coalesce window."""
        return coalesce_batches(batches, schema, 4 * self.config.batch_size)

    def _run_chain_collect(self, chain: FusedChain) -> SiteData:
        """Evaluate a fused chain to materialized SiteData (used when the
        parent operator has no streaming path)."""
        run = self._open_chain(chain)
        out: SiteData = {}
        for w in self.worker_ids:
            out[w] = list(self._chain_site_batches(chain, w, run))
        self._close_chain(run)
        return out

    def _chain_site_batches(self, chain: FusedChain, w: int, run: _ChainRun, fold=None):
        """Stream one site's batches through the fused chain, wrapped in a
        per-site ``pipeline`` span when tracing.

        The span opens when the first batch is pulled and closes when the
        site's stream is exhausted; because sites are consumed one after
        another on the query's driver thread, pipeline spans of the same
        site never overlap — the invariant the trace tests assert. Any
        network send issued while a batch is being consumed (streaming
        shuffle/broadcast/gather) nests inside the producing site's span.
        """
        tr = self.tracer
        if tr is None:
            yield from self._chain_site_batches_impl(chain, w, run, fold)
            return
        sp = tr.begin(
            "pipeline", cat="pipeline", node=w, table=chain.scan.attrs["table"]
        )
        rows = 0
        try:
            for b in self._chain_site_batches_impl(chain, w, run, fold):
                rows += b.length
                yield b
        finally:
            tr.end(sp, rows=rows)

    def _chain_site_batches_impl(self, chain: FusedChain, w: int, run: _ChainRun, fold=None):
        """Stream one site's batches through the fused chain.

        Each table fragment becomes one morsel task that scans and runs
        the full transform chain in its worker thread; the driver thread
        consumes task results in submission order, so every downstream
        send sequence (and the fault injector's clock) stays
        deterministic no matter how threads interleave. Fragments of a
        table smaller than ``morsel_min_rows`` run as one inline morsel
        instead — tiny selective scans don't pay per-fragment scheduling
        overhead.
        """
        op = chain.scan
        table = op.attrs["table"]
        replicated = op.partitioning.kind == "replicated"
        serving = self._serving_for(op, w, table, replicated)
        rt = self.workers[serving]
        storage = rt.storage.get(table)
        if storage is None:
            raise ExecutionError(f"worker {serving} has no table {table!r}")
        needed, pred_fn, scan_pred, finish = self._scan_plan(storage, op)
        steps = chain.steps()
        probes = run.probes.get(w)
        counts = run.counts
        scan_id = op.id
        # join-key blooms for this site's scan (fused-probe build sides
        # and/or a shuffle prefilter's shipped filter); None when the
        # pushdown is off or no probe key maps to a scan column
        scan_blooms = run.blooms.get((w, scan_id))
        n_disks = len(storage.fragments)
        min_rows = self.config.morsel_min_rows
        inline = min_rows > 0 and storage.row_count < min_rows
        dop = self.config.morsel_dop or rt.current_dop()
        dop = max(1, min(dop, n_disks))
        threaded = (
            not inline
            and (self.config.parallel_scans or self.config.morsel_dop > 1)
            and dop > 1
            and n_disks > 1
        )

        # a probe has fixed NumPy setup cost per call, so probing each
        # page-set-sized scan batch wastes most of the kernel's width.
        # Run the cheap pre-probe steps per batch, then concatenate the
        # survivors and probe once per morsel — the classic one-probe-
        # per-morsel shape. Probe output is probe-major, so probing the
        # concatenation is bit-identical to concatenating per-batch
        # probes; grouping depends only on deterministic batch sizes.
        probe_at = next(
            (i for i, (_i, kind, _p) in enumerate(steps) if kind == "probe"), None
        )
        pre = steps if probe_at is None else steps[:probe_at]
        post = None if probe_at is None else steps[probe_at:]

        # page sets are sized by the table's widest column, so a scan of
        # narrow columns yields batches far below batch_size; coalescing
        # the raw stream first lets finish/filter/probe run at full
        # batch width (grouping depends only on deterministic sizes)
        target = max(1, self.config.batch_size)

        def fold_morsel(ds: list[int] | None) -> tuple[list[RowBatch], dict[int, int], ScanStats]:
            """Near-data aggregation morsel: fold every page set's rows
            into a running partial-aggregate accumulator the moment the
            scan produces them — the pipeline never holds more than one
            set's worth of materialized rows per morsel. Only exactness-
            gated aggregates ride this (COUNT / int SUM / MIN / MAX), so
            the per-set fold order cannot perturb results."""
            f_keys, f_specs, f_schema = fold
            t0 = time.perf_counter()
            st = ScanStats()
            local: dict[int, int] = {}
            acc: RowBatch | None = None
            for raw in storage.scan(
                needed, pred_fn, scan_pred,
                skipping=self.config.data_skipping, stats=st, disks=ds,
                neardata=self.config.neardata_scan, shared=self.config.shared_scans,
                blooms=scan_blooms,
            ):
                b = finish(raw)
                local[scan_id] = local.get(scan_id, 0) + b.length
                part = _partial_aggregate(b, f_keys, f_specs, f_schema)
                if acc is None:
                    acc = part
                else:
                    both = RowBatch.concat(f_schema, [acc, part])
                    acc = _combine_partials(both, f_keys, f_specs, f_schema)
            outs = [acc] if acc is not None else []
            self.inflight.produced(len(outs))
            self._note_busy(serving, time.perf_counter() - t0)
            return outs, local, st

        def morsel(ds: list[int] | None) -> tuple[list[RowBatch], dict[int, int], ScanStats]:
            t0 = time.perf_counter()
            st = ScanStats()
            local: dict[int, int] = {}
            outs: list[RowBatch] = []
            staged: list[RowBatch] = []
            buf: list[RowBatch] = []
            held = 0

            def step(raws: list[RowBatch]) -> None:
                raw = raws[0] if len(raws) == 1 else RowBatch.concat(raws[0].schema, raws)
                b = finish(raw)
                local[scan_id] = local.get(scan_id, 0) + b.length
                b = apply_steps(b, pre, local, probes)
                if b is not None and b.length:
                    (outs if post is None else staged).append(b)

            for raw in storage.scan(
                needed, pred_fn, scan_pred,
                skipping=self.config.data_skipping, stats=st, disks=ds,
                neardata=self.config.neardata_scan, shared=self.config.shared_scans,
                blooms=scan_blooms,
            ):
                buf.append(raw)
                held += raw.length
                if held >= target:
                    step(buf)
                    buf, held = [], 0
            if buf:
                step(buf)
            if post is not None and staged:
                merged = (
                    staged[0] if len(staged) == 1
                    else RowBatch.concat(staged[0].schema, staged)
                )
                b = apply_steps(merged, post, local, probes)
                if b is not None and b.length:
                    outs.append(b)
            self.inflight.produced(len(outs))
            self._note_busy(serving, time.perf_counter() - t0)
            return outs, local, st

        body = morsel if fold is None else fold_morsel
        if inline:
            tasks = [lambda: body(None)]
        else:
            tasks = [lambda d=d: body([d]) for d in range(n_disks)]
        self.pipe.morsels += len(tasks)
        for outs, local, st in run_tasks_ordered(tasks, dop, threaded, self.scheduler):
            self._scan_stats.merge(st)
            for op_id, n in local.items():
                counts[op_id] = counts.get(op_id, 0) + n
            for b in outs:
                self.inflight.consumed(1)
                yield b

    def _instances(self, op: PhysOp) -> list[int]:
        return self.worker_ids if op.site == WORKERS else [self.coord_id]

    # -- failure handling ------------------------------------------------------------
    def _retrying(self, send_fn: Callable[[], object], dest: int):
        """Run a network send with bounded retry and simulated-time
        exponential backoff.

        Transient :class:`NetworkError` (dropped link, partition blip) is
        retried; :class:`WorkerFailureError` (the node itself is down)
        escalates immediately to the query-restart path, as does retry
        exhaustion.
        """
        delay = self.config.backoff_base
        budget = self.config.send_retries
        for attempt in range(budget + 1):
            try:
                return send_fn()
            except WorkerFailureError:
                self.failed_workers.add(dest)
                raise
            except NetworkError as e:
                if attempt == budget:
                    self.failed_workers.add(dest)
                    raise WorkerFailureError(
                        dest, f"send to node {dest} failed after {budget} retries: {e}"
                    ) from e
                self.retries += 1
                self.backoff_time += delay
                self._record_chaos(
                    "retry", node=dest, detail=f"attempt {attempt + 1}, backoff {delay:.4f}s"
                )
                delay *= 2

    def _record_chaos(self, kind: str, **kw) -> None:
        inj = getattr(self.net, "injector", None)
        if inj is not None:
            # the injector's listener (Database wiring) forwards the
            # event into the active trace and the flight recorder, so
            # don't emit twice here
            inj.record(kind, **kw)
            return
        if self.tracer is not None:
            self.tracer.event("chaos:" + kind, **kw)
        if self.recorder is not None:
            node = kw.pop("node", -1)
            self.recorder.record("chaos_" + kind, node=node, **kw)

    def _probe_worker(self, w: int, op: PhysOp) -> None:
        """Raise WorkerFailureError if worker ``w`` cannot serve the op."""
        if self.fault_injector is not None:
            self.fault_injector(w, op)
        inj = getattr(self.net, "injector", None)
        if inj is not None:
            inj.on_op(w, op)

    def _healthy_peer(self, op: PhysOp, table: str, exclude: int) -> int | None:
        """A live worker holding a replica of ``table`` (failover target)."""
        for p in self.worker_ids:
            if p == exclude or self.health.is_blacklisted(p) or self.health.is_draining(p):
                continue
            if table not in self.workers[p].storage:
                continue
            try:
                self._probe_worker(p, op)
            except WorkerFailureError:
                self.health.record_failure(p)
                self.failed_workers.add(p)
                continue
            return p
        return None

    # -- leaves ---------------------------------------------------------------------
    def _eval_dual(self, op: PhysOp) -> SiteData:
        return {self.coord_id: [RowBatch(op.schema, {"__one": np.array([1], dtype=np.int64)})]}

    def _eval_sysscan(self, op: PhysOp) -> SiteData:
        """Materialize a virtual (sys.*) relation at the coordinator.

        The provider snapshots live cluster state into a RowBatch with
        unqualified column names; a fused predicate (``fuse_scans``
        merges the filter down, same as storage scans) is applied here,
        then columns are aligned to the possibly alias-qualified
        physical schema."""
        table = op.attrs["table"]
        provider = self.sys_tables.get(table)
        if provider is None:
            raise ExecutionError(f"unknown system table {table!r}")
        t0 = time.perf_counter()
        batch: RowBatch = provider()
        pred_expr = op.attrs.get("predicate")
        if pred_expr is not None:
            pred_fn = compile_predicate(_strip_qualifiers(pred_expr), batch.schema)
            batch = batch.filter(pred_fn(batch))
        out = RowBatch(op.schema, {c.name: batch.col(c.unqualified) for c in op.schema})
        self._note_busy(self.coord_id, time.perf_counter() - t0)
        return {self.coord_id: [out]}

    def _serving_for(self, op: PhysOp, w: int, table: str, replicated: bool) -> int:
        """The worker that will serve site ``w``'s partition of ``table``:
        ``w`` itself when healthy, otherwise (replicated tables only) a
        live replica after the blacklist/failover dance."""
        serving = w
        if replicated and (
            self.health.is_draining(w)
            or (self.health.is_blacklisted(w) and not self.health.allow_probe(w))
        ):
            # degrade gracefully: skip the draining/known-bad worker.
            # Blacklisted workers get a half-open probe every
            # ``probe_interval`` avoided reads (and every read while in
            # probation) so a recovered node re-earns traffic; draining
            # workers are leaving the placement, never probed back in.
            peer = self._healthy_peer(op, table, exclude=w)
            if peer is not None:
                serving = peer
                self.failed_workers.add(w)
                why = "draining" if self.health.is_draining(w) else "blacklisted"
                self._record_chaos(
                    "failover", node=w,
                    detail=f"{why}; replicated {table!r} served by worker {peer}",
                )
        if serving == w:
            try:
                self._probe_worker(w, op)
                self.health.record_success(w)
            except WorkerFailureError:
                self.health.record_failure(w)
                self.failed_workers.add(w)
                if self.health.is_blacklisted(w):
                    self._record_chaos(
                        "blacklist", node=w,
                        detail=f"{self.health.failures(w)} consecutive failures",
                    )
                peer = self._healthy_peer(op, table, exclude=w) if replicated else None
                if peer is None:
                    raise  # partitioned data only lives on w: restart the query
                serving = peer
                self._record_chaos(
                    "failover", node=w,
                    detail=f"replicated {table!r} served by worker {peer}",
                )
        return serving

    def _eval_scan(self, op: PhysOp) -> SiteData:
        table = op.attrs["table"]
        replicated = op.partitioning.kind == "replicated"
        tr = self.tracer
        out: SiteData = {}
        for w in self.worker_ids:
            if tr is None:
                out[w] = self._scan_site(op, w, table, replicated)
                continue
            # operator-at-a-time scans still get a per-site span so
            # traces look the same whichever engine shape runs
            sp = tr.begin("pipeline", cat="pipeline", node=w, table=table)
            try:
                out[w] = self._scan_site(op, w, table, replicated)
            finally:
                tr.end(sp, rows=sum(b.length for b in out.get(w, ())))
        return out

    def _scan_site(self, op: PhysOp, w: int, table: str, replicated: bool) -> list[RowBatch]:
        serving = self._serving_for(op, w, table, replicated)
        rt = self.workers[serving]
        if table in rt.external:
            return self._scan_external(rt, table, op)
        storage = rt.storage.get(table)
        if storage is None:
            raise ExecutionError(f"worker {serving} has no table {table!r}")
        return self._scan_storage(storage, op, op.attrs.get("predicate"), serving)

    def _scan_plan(self, storage: TableStorage, op: PhysOp):
        """Compile a scan op against a table: (needed columns, batch
        predicate, storage-level scan predicate, schema-align closure)."""
        pred_expr: Expr | None = op.attrs.get("predicate")
        tschema = storage.schema
        out_bases = [c.unqualified for c in op.schema]
        needed = list(dict.fromkeys(out_bases))
        pred_fn = None
        scan_pred = None
        if pred_expr is not None:
            base_pred = _strip_qualifiers(pred_expr)
            from ..sql.ast import column_refs

            for r in column_refs(base_pred):
                base = r.name
                if base not in needed and base in [c.name for c in tschema]:
                    needed.append(base)
            scan_schema = tschema.project([tschema.resolve(n) for n in needed])
            pred_fn = compile_predicate(base_pred, scan_schema)
            scan_pred = to_scan_predicate(base_pred, tschema)
        rename = {}
        for c in op.schema:
            rename[c.unqualified] = c.name

        def finish(batch: RowBatch) -> RowBatch:
            b = batch.project([batch.schema.resolve(n) for n in out_bases])
            if rename and any(k != v for k, v in rename.items()):
                b = b.rename({batch.schema.resolve(k): v for k, v in rename.items()})
            # align column order/names with the physical schema
            return RowBatch(op.schema, {c.name: b.col(c.name) for c in op.schema})

        return needed, pred_fn, scan_pred, finish

    def _scan_storage(
        self, storage: TableStorage, op: PhysOp, pred_expr: Expr | None, site: int
    ) -> list[RowBatch]:
        needed, pred_fn, scan_pred, finish = self._scan_plan(storage, op)
        n_disks = len(storage.fragments)
        dop = min(n_disks, max(1, self._dop_for(storage)))
        if self.config.parallel_scans and dop > 1 and n_disks > 1:
            # one scan thread per fragment (paper §IV); per-thread stats
            # are merged afterwards to keep counters race-free
            def scan_disk(d: int) -> tuple[list[RowBatch], ScanStats]:
                t0 = time.perf_counter()
                st = ScanStats()
                out = [
                    finish(b)
                    for b in storage.scan(
                        needed, pred_fn, scan_pred,
                        skipping=self.config.data_skipping, stats=st, disks=[d],
                        neardata=self.config.neardata_scan,
                        shared=self.config.shared_scans,
                    )
                ]
                self._note_busy(site, time.perf_counter() - t0)
                return out, st

            batches: list[RowBatch] = []
            tasks = [lambda d=d: scan_disk(d) for d in range(n_disks)]
            for out, st in run_tasks_ordered(tasks, dop, True, self.scheduler):
                batches.extend(out)
                self._scan_stats.merge(st)
            return batches

        t0 = time.perf_counter()
        out = [
            finish(b)
            for b in storage.scan(
                needed, pred_fn, scan_pred,
                skipping=self.config.data_skipping, stats=self._scan_stats,
                neardata=self.config.neardata_scan,
                shared=self.config.shared_scans,
            )
        ]
        self._note_busy(site, time.perf_counter() - t0)
        return out

    def _dop_for(self, storage: TableStorage) -> int:
        """Worker-level DOP (resource-management level 2)."""
        for rt in self.workers.values():
            if any(ts is storage for ts in rt.storage.values()):
                return rt.current_dop()
        return 1

    def _scan_external(self, rt: WorkerRuntime, table: str, op: PhysOp) -> list[RowBatch]:
        uet, frags = rt.external[table]
        pred_expr = op.attrs.get("predicate")
        batches: list[RowBatch] = []
        for frag in frags:
            for batch in uet.scan_fragment(frag, self.config.batch_size):
                cols = {}
                for c in op.schema:
                    cols[c.name] = batch.col(batch.schema.resolve(c.unqualified))
                b = RowBatch(op.schema, cols)
                if pred_expr is not None:
                    mask = compile_predicate(_strip_qualifiers(pred_expr), b.schema)(b)
                    b = b.filter(mask)
                if b.length:
                    batches.append(b)
                    self._scan_stats.rows_out += b.length
        return batches

    # -- row-wise operators -----------------------------------------------------------
    def _eval_filter(self, op: PhysOp) -> SiteData:
        child = self._eval(op.children[0])
        pred = compile_predicate(op.attrs["predicate"], op.children[0].schema)
        out: SiteData = {}
        for site, batches in child.items():
            t0 = time.perf_counter()
            out[site] = [b.filter(pred(b)) for b in batches if b.length]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_project(self, op: PhysOp) -> SiteData:
        child = self._eval(op.children[0])
        out: SiteData = {}
        for site, batches in child.items():
            t0 = time.perf_counter()
            out[site] = [project_batch(b, op.attrs["exprs"], op.schema) for b in batches]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_limit(self, op: PhysOp) -> SiteData:
        child = self._eval(op.children[0])
        n = op.attrs["n"]
        out: SiteData = {}
        for site, batches in child.items():
            taken: list[RowBatch] = []
            remaining = n
            for b in batches:
                if remaining <= 0:
                    break
                taken.append(b.slice(0, remaining))
                remaining -= min(b.length, remaining)
            out[site] = taken
        return out

    def _eval_sort(self, op: PhysOp) -> SiteData:
        child = self._eval(op.children[0])
        out: SiteData = {}
        for site, batches in child.items():
            t0 = time.perf_counter()
            merged = self._materialize(site, op.schema, batches)
            if merged.length:
                merged = merged.take(sort_indices(merged, op.attrs["keys"]))
            out[site] = [merged]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_topk(self, op: PhysOp) -> SiteData:
        keys, k = op.attrs["keys"], op.attrs["k"]
        chain = self._chain_for(op.children[0], allow_bare_scan=True)
        if chain is not None:
            # fused: fold the bounded heap directly over chain output
            run = self._open_chain(chain)
            out: SiteData = {}
            for site in self.worker_ids:
                acc = RowBatch.empty(op.schema)
                fold_s = 0.0
                for b in self._coalesce(
                    self._chain_site_batches(chain, site, run), op.schema
                ):
                    t0 = time.perf_counter()
                    acc = top_k(RowBatch.concat(op.schema, [acc, b]), keys, k)
                    fold_s += time.perf_counter() - t0
                out[site] = [acc]
                if fold_s:
                    self._note_busy(site, fold_s)
            self._close_chain(run)
            return out
        child = self._eval(op.children[0])
        out: SiteData = {}
        for site, batches in child.items():
            # streaming bounded heap: fold batches through top_k
            t0 = time.perf_counter()
            acc = RowBatch.empty(op.schema)
            for b in batches:
                acc = top_k(RowBatch.concat(op.schema, [acc, b]), keys, k)
            out[site] = [acc]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_distinct(self, op: PhysOp) -> SiteData:
        child = self._eval(op.children[0])
        out: SiteData = {}
        for site, batches in child.items():
            t0 = time.perf_counter()
            merged = self._materialize(site, op.schema, batches)
            out[site] = [distinct_batch(merged)]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_union(self, op: PhysOp) -> SiteData:
        datas = [self._eval(c) for c in op.children]
        out: SiteData = {}
        for site in self._instances(op):
            batches: list[RowBatch] = []
            for child_op, d in zip(op.children, datas):
                for b in d.get(site, []):
                    aligned = RowBatch(
                        op.schema,
                        {
                            c.name: b.col(b.schema.names()[i])
                            for i, c in enumerate(op.schema.columns)
                        },
                    )
                    batches.append(aligned)
            out[site] = batches
        return out

    # -- aggregation ---------------------------------------------------------------
    def _eval_agg(self, op: PhysOp) -> SiteData:
        mode = op.attrs.get("mode", "complete")
        keys = tuple(op.attrs.get("group_keys", ()))
        if mode in ("partial", "complete"):
            distinct = mode == "complete" and any(s.distinct for s in op.attrs["aggs"])
            chain = None if distinct else self._chain_for(op.children[0], allow_bare_scan=True)
            if chain is not None:
                return self._eval_agg_fused(op, chain, keys, mode)
        child = self._eval(op.children[0])
        out: SiteData = {}
        for site, batches in child.items():
            t0 = time.perf_counter()
            if mode == "complete":
                res = self._complete_aggregate(site, op, keys, batches)
            else:
                merged = self._materialize(site, op.children[0].schema, batches)
                if mode == "partial":
                    res = _partial_aggregate(merged, keys, op.attrs["partial_specs"], op.schema)
                elif mode == "final":
                    res = _final_aggregate(merged, keys, op.attrs["final_specs"], op.schema)
                else:
                    raise ExecutionError(f"unknown agg mode {mode}")
            out[site] = [res]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _eval_agg_fused(self, op: PhysOp, chain: FusedChain, keys, mode: str) -> SiteData:
        """Fold partial aggregates over fused-chain output, one pass.

        Each non-empty batch is pre-aggregated to partial form and
        folded into a per-site accumulator as it leaves the chain, so
        the operator never materializes its input. Complete mode (no
        distinct aggs) goes through the partial/final split — exactly
        the operator-level resource-management shape
        :meth:`_complete_aggregate` uses under memory pressure.
        """
        child_schema = op.children[0].schema
        if mode == "partial":
            partial_schema, partial_specs = op.schema, op.attrs["partial_specs"]
            final_specs = None
        else:
            from types import SimpleNamespace

            from ..optimizer.dataflow import _split_aggs

            node = SimpleNamespace(group_keys=keys, aggs=op.attrs["aggs"])
            partial_schema, partial_specs, final_specs = _split_aggs(node, child_schema)
        # near-data aggregation: a bare-scan chain whose aggregates are
        # all fold-order-insensitive (COUNT, exact int/bool SUM, MIN/MAX
        # — float SUM folds pairwise and would shift last-ulp results)
        # folds partials per page set inside the scan morsels, so rows
        # never accumulate beyond one set per morsel
        fold = None
        if (
            self.config.neardata_scan
            and not chain.transforms
            and _fold_exact(partial_specs, child_schema)
        ):
            fold = (keys, partial_specs, partial_schema)
        run = self._open_chain(chain)
        out: SiteData = {}
        for site in self.worker_ids:
            acc: RowBatch | None = None
            fold_s = 0.0
            source = (
                self._chain_site_batches(chain, site, run, fold)
                if fold is not None
                else self._coalesce(
                    self._chain_site_batches(chain, site, run), child_schema
                )
            )
            for b in source:
                t0 = time.perf_counter()
                part = (
                    b  # already a morsel-level partial in partial_schema
                    if fold is not None
                    else _partial_aggregate(b, keys, partial_specs, partial_schema)
                )
                if acc is None:
                    acc = part
                else:
                    both = RowBatch.concat(partial_schema, [acc, part])
                    acc = _combine_partials(both, keys, partial_specs, partial_schema)
                fold_s += time.perf_counter() - t0
            t0 = time.perf_counter()
            if acc is None:
                # empty site: aggregate the empty input once (keeps the
                # engine's empty-input semantics — COUNT/SUM partials of
                # 0 and NULL MIN/MAX partials, which the NaN-skipping
                # combine then ignores)
                acc = _partial_aggregate(
                    RowBatch.empty(child_schema), keys, partial_specs, partial_schema
                )
            if mode == "complete":
                acc = _final_aggregate(acc, keys, final_specs, op.schema)
            out[site] = [acc]
            self._note_busy(site, fold_s + (time.perf_counter() - t0))
        self._close_chain(run)
        return out

    def _complete_aggregate(self, site, op: PhysOp, keys, batches) -> RowBatch:
        """Complete aggregation, chunked when the input exceeds the memory
        grant: each batch is pre-aggregated to partial form and folded into
        a running accumulator (operator-level resource management), instead
        of materializing the whole input first."""
        specs = op.attrs["aggs"]
        child_schema = op.children[0].schema
        governor = self.workers[site].governor if site in self.workers else None
        total_bytes = sum(b.nbytes for b in batches)
        chunkable = (
            governor is not None
            and len(batches) > 1
            and total_bytes > governor.budget // 4
            and not any(s.distinct for s in specs)
        )
        if not chunkable:
            merged = self._materialize(site, child_schema, batches)
            return aggregate_batch(merged, keys, specs, op.schema)

        from types import SimpleNamespace

        from ..optimizer.dataflow import _split_aggs

        node = SimpleNamespace(group_keys=keys, aggs=specs)
        partial_schema, partial_specs, final_specs = _split_aggs(node, child_schema)
        acc: RowBatch | None = None
        for b in batches:
            if b.length == 0:
                continue  # an empty chunk must not inject MIN/MAX defaults
            part = _partial_aggregate(b, keys, partial_specs, partial_schema)
            if acc is None:
                acc = part
            else:
                both = RowBatch.concat(partial_schema, [acc, part])
                acc = _combine_partials(both, keys, partial_specs, partial_schema)
        if acc is None:
            acc = RowBatch.empty(partial_schema)
        return _final_aggregate(acc, keys, final_specs, op.schema)

    # -- joins ------------------------------------------------------------------------
    def _eval_hashjoin(self, op: PhysOp) -> SiteData:
        left_op, right_op = op.children
        kind = op.attrs["kind"]
        pairs = op.attrs["pairs"]
        residual = op.attrs["residual"]
        match_col = op.attrs.get("match_col")

        right = self._eval(right_op)
        prefilter = None
        pushed_scan_id = None
        if (
            op.attrs.get("bloom")
            and pairs
            and left_op.op == "shuffle"
            and kind in ("inner", "semi")
        ):
            built = self._build_bloom_prefilter(op, right, right_op, pairs)
            # baseline engines override the builder to return None
            # (no bloom shuffle at all) — treat that as "no prefilter"
            prefilter, bits = built if built is not None else (None, None)
            if built is not None and self.config.bloom_scan_pushdown:
                # pass the same build bloom sideways into the probe side's
                # scan, so zone maps / dictionary pages skip on the join
                # key before rows are even decoded for the shuffle
                chain = self._chain_for(left_op.children[0], allow_bare_scan=True)
                if chain is not None:
                    targets = self._scan_bloom_targets(chain, op, pairs)
                    scan_blooms = None
                    if bits is None:
                        # empty build side: nothing can match — the scan
                        # itself is dead for this query
                        scan_blooms = [ScanBloom(column="", drop_all=True)]
                    elif len(pairs) == 1 and 0 in targets:
                        # the shipped bits hash the full key tuple, so a
                        # per-column scan test is only sound single-key
                        scan_blooms = [ScanBloom(column=targets[0], bits=bits)]
                    if scan_blooms:
                        pushed_scan_id = chain.scan.id
                        self._pending_scan_blooms[pushed_scan_id] = scan_blooms
        try:
            if left_op.op == "shuffle":
                left = self._traced(
                    left_op, lambda: self._eval_shuffle(left_op, prefilter=prefilter)
                )
            else:
                left = self._eval(left_op)
        finally:
            if pushed_scan_id is not None:
                self._pending_scan_blooms.pop(pushed_scan_id, None)

        # left/single/cross joins need the whole probe side (row order of
        # unmatched padding, scalar cardinality checks), so only the
        # probe-order-preserving kinds stream
        streaming = (
            self.config.pipelined_execution and pairs and kind in ("inner", "semi", "anti")
        )
        lkey_fns = (
            [compile_expr(le, left_op.schema).fn for le, _ in pairs] if streaming else None
        )
        out: SiteData = {}
        for site in self._instances(op):
            t0 = time.perf_counter()
            rb = self._materialize(site, right_op.schema, right.get(site, []))
            if streaming:
                # build once, probe every left batch as it streams by —
                # the per-pipeline reusable hash table (paper §III-B)
                jht = JoinHashTable(
                    [
                        np.asarray(compile_expr(re, right_op.schema).fn(rb))
                        for _, re in pairs
                    ]
                )
                parts = [
                    self._probe_batch(op, jht, lb, rb, kind, pairs, residual,
                                      left_op.schema, right_op.schema, lkey_fns=lkey_fns)
                    for lb in self._coalesce(left.get(site, []), left_op.schema)
                ]
                parts = [p for p in parts if p.length]
                out[site] = parts if parts else [RowBatch.empty(op.schema)]
            else:
                lb = self._materialize(site, left_op.schema, left.get(site, []))
                out[site] = [
                    hash_join(lb, rb, kind, pairs, residual, op.schema, match_col,
                              left_op.schema, right_op.schema)
                ]
            self._note_busy(site, time.perf_counter() - t0)
        return out

    def _probe_batch(
        self, op: PhysOp, jht: JoinHashTable, lb: RowBatch, rb: RowBatch,
        kind: str, pairs, residual, lschema: Schema, rschema: Schema,
        lkey_fns=None,
    ) -> RowBatch:
        """Probe one left batch against a prebuilt join hash table."""
        if lkey_fns is None:
            lkey_fns = [compile_expr(le, lschema).fn for le, _ in pairs]
        lkeys = [np.asarray(fn(lb)) for fn in lkey_fns]
        li, ri = jht.match_indices(lkeys)
        if residual and len(li):
            combined = _combine(lb.take(li), rb.take(ri))
            mask = np.ones(len(li), dtype=bool)
            for r in residual:
                mask &= compile_predicate(r, combined.schema)(combined)
            li, ri = li[mask], ri[mask]
        if kind == "inner":
            lt, rt = lb.take(li), rb.take(ri)
            cols = {c.name: lt.col(c.name) for c in lschema}
            for c in rschema:
                cols[c.name] = rt.col(c.name)
            return RowBatch(op.schema, cols)
        if kind == "semi":
            keep = np.zeros(lb.length, dtype=bool)
            keep[li] = True
            return lb.filter(keep)
        # anti
        keep = np.ones(lb.length, dtype=bool)
        keep[li] = False
        return lb.filter(keep)

    def _build_bloom_prefilter(
        self, op: PhysOp, right: SiteData, right_op: PhysOp, pairs
    ) -> tuple[Callable[[RowBatch], RowBatch], np.ndarray | None]:
        """Build a Bloom filter over the build side's join keys and ship it
        (accounted through the tree topology) so probe batches are filtered
        before they hit the shuffle.

        Returns ``(prefilter, bits)``; ``bits`` is None for an empty
        build side — the prefilter then drops everything outright
        (an inner/semi probe against nothing matches nothing) instead
        of shipping and probing an all-zero filter.
        """
        key_exprs = [re for _, re in pairs]
        bits = None
        for w, batches in right.items():
            merged = self._materialize(w, right_op.schema, batches)
            if merged.length == 0:
                continue
            arrays = [
                np.asarray(compile_expr(e, right_op.schema).fn(merged)) for e in key_exprs
            ]
            codes = _value_hash(arrays)
            local = bloom_filter_codes(codes)
            bits = local if bits is None else (bits | local)
        if bits is None:
            def drop_all(batch: RowBatch) -> RowBatch:
                return batch.filter(np.zeros(batch.length, dtype=bool))

            return drop_all, None
        # account the filter exchange: every worker receives the merged bits
        payload = bits.tobytes()
        tag = f"{self.qtag}bloom{op.id}"
        for w in self.worker_ids:
            self._retrying(
                lambda w=w: self.net.route_send(
                    self.tree, self.coord_id, w, payload, tag=tag
                ),
                w,
            )
        for w in self.worker_ids:
            self.net.recv_all(w, tag=tag)
        probe_exprs = [le for le, _ in pairs]
        probe_schema = op.children[0].children[0].schema  # shuffle's child

        def prefilter(batch: RowBatch) -> RowBatch:
            arrays = [
                np.asarray(compile_expr(e, probe_schema).fn(batch)) for e in probe_exprs
            ]
            codes = _value_hash(arrays)
            return batch.filter(bloom_filter_test(bits, codes))

        return prefilter, bits

    # -- exchanges ----------------------------------------------------------------------
    def _shuffle_batch(self, src: int, batch: RowBatch, compiled, buffers, tag: str, prefilter) -> None:
        """Partition one batch by key hash and send/buffer each slice."""
        t0 = time.perf_counter()
        n = len(self.worker_ids)
        if prefilter is not None:
            batch = prefilter(batch)
        if batch.length == 0:
            self._note_busy(src, time.perf_counter() - t0)
            return
        arrays = [np.asarray(c.fn(batch)) for c in compiled]
        codes = _value_hash(arrays)
        dest_idx = (codes % np.uint64(n)).astype(np.int64)
        order = np.argsort(dest_idx, kind="stable")
        sorted_dest = dest_idx[order]
        bounds = np.searchsorted(sorted_dest, np.arange(1, n))
        chunks = np.split(order, bounds)
        for d, idx in enumerate(chunks):
            if len(idx) == 0:
                continue
            part = batch.take(idx)
            dest = self.worker_ids[d]
            if dest == src:
                buffers[dest].append(part)  # local partition: no network
            else:
                payload = part.to_bytes()
                self._retrying(
                    lambda: self.net.route_send(self.ntm, src, dest, payload, tag),
                    dest,
                )
        self._note_busy(src, time.perf_counter() - t0)

    def _eval_shuffle(self, op: PhysOp, prefilter=None) -> SiteData:
        child_op = op.children[0]
        key_exprs = op.attrs["key_exprs"]
        tag = f"{self.qtag}shuf{op.id}"
        compiled = [compile_expr(e, child_op.schema) for e in key_exprs]
        buffers: dict[int, SpillableList] = {
            w: SpillableList(self.workers[w].fs, self.workers[w].governor, op.schema, tag)
            for w in self.worker_ids
        }
        chain = self._chain_for(child_op, allow_bare_scan=True)
        if chain is not None:
            # streaming exchange: each batch is partitioned and routed the
            # moment its morsel completes — the producer side never
            # materializes its output
            run = self._open_chain(chain)
            for src in self.worker_ids:
                for batch in self._coalesce(
                    self._chain_site_batches(chain, src, run), child_op.schema
                ):
                    self._shuffle_batch(src, batch, compiled, buffers, tag, prefilter)
            self._close_chain(run)
        else:
            child = self._eval(child_op)
            for src, batches in child.items():
                for batch in batches:
                    self._shuffle_batch(src, batch, compiled, buffers, tag, prefilter)
        out: SiteData = {}
        for w in self.worker_ids:
            t0 = time.perf_counter()
            for _, _, payload in self.net.recv_all(w, tag):
                buffers[w].append(RowBatch.from_bytes(payload))
            out[w] = list(buffers[w])
            buffers[w].close()
            self._note_busy(w, time.perf_counter() - t0)
        return out

    def _eval_broadcast(self, op: PhysOp) -> SiteData:
        child_op = op.children[0]
        tag = f"{self.qtag}bcast{op.id}"
        if child_op.site != COORD and child_op.partitioning.kind != "replicated":
            chain = self._chain_for(child_op, allow_bare_scan=True)
            if chain is not None:
                # streaming broadcast: replicate each batch as it is produced
                run = self._open_chain(chain)
                local: SiteData = {w: [] for w in self.worker_ids}
                for src in self.worker_ids:
                    for b in self._coalesce(
                        self._chain_site_batches(chain, src, run), child_op.schema
                    ):
                        local[src].append(b)
                        t0 = time.perf_counter()
                        payload = b.to_bytes()
                        self._note_busy(src, time.perf_counter() - t0)
                        for dest in self.worker_ids:
                            if dest != src:
                                self._retrying(
                                    lambda dest=dest: self.net.route_send(
                                        self.ntm, src, dest, payload, tag
                                    ),
                                    dest,
                                )
                self._close_chain(run)
                out: SiteData = {}
                for w in self.worker_ids:
                    t0 = time.perf_counter()
                    received = [
                        RowBatch.from_bytes(p) for _, _, p in self.net.recv_all(w, tag)
                    ]
                    out[w] = local[w] + received
                    self._note_busy(w, time.perf_counter() - t0)
                return out
        child = self._eval(child_op)
        if child_op.site == COORD:
            for b in child.get(self.coord_id, []):
                payload = b.to_bytes()
                for w in self.worker_ids:
                    self._retrying(
                        lambda w=w: self.net.route_send(self.tree, self.coord_id, w, payload, tag),
                        w,
                    )
        else:
            sources = child.items()
            if child_op.partitioning.kind == "replicated":
                return child  # already everywhere
            for src, batches in sources:
                for b in batches:
                    t0 = time.perf_counter()
                    payload = b.to_bytes()
                    self._note_busy(src, time.perf_counter() - t0)
                    for dest in self.worker_ids:
                        if dest != src:
                            self._retrying(
                                lambda dest=dest: self.net.route_send(
                                    self.ntm, src, dest, payload, tag
                                ),
                                dest,
                            )
        out: SiteData = {}
        for w in self.worker_ids:
            t0 = time.perf_counter()
            received = [RowBatch.from_bytes(p) for _, _, p in self.net.recv_all(w, tag)]
            local = child.get(w, []) if child_op.site == WORKERS else []
            out[w] = local + received
            self._note_busy(w, time.perf_counter() - t0)
        return out

    def _eval_gather(self, op: PhysOp) -> SiteData:
        child_op = op.children[0]
        mode = op.attrs.get("mode", "concat")
        tag = f"{self.qtag}gather{op.id}"
        if mode == "concat" and child_op.site != COORD and child_op.op != "shuffle":
            chain = self._chain_for(child_op, allow_bare_scan=True)
            if chain is not None:
                # streaming gather: batches climb the tree as morsels finish.
                # The chain still runs on every site (a replicated child is
                # scanned everywhere, like the operator-at-a-time engine, so
                # probe/failover bookkeeping is identical) but only the
                # designated sources forward their output.
                sources = self.worker_ids
                if op.attrs.get("replicated_child"):
                    sources = self.worker_ids[:1]
                run = self._open_chain(chain)
                for w in self.worker_ids:
                    forward = w in sources
                    for b in self._coalesce(
                        self._chain_site_batches(chain, w, run), child_op.schema
                    ):
                        if forward:
                            t0 = time.perf_counter()
                            payload = b.to_bytes()
                            self._note_busy(w, time.perf_counter() - t0)
                            self._retrying(
                                lambda w=w: self.net.route_send(
                                    self.tree, w, self.coord_id, payload, tag
                                ),
                                self.coord_id,
                            )
                self._close_chain(run)
                t0 = time.perf_counter()
                received = [
                    RowBatch.from_bytes(p)
                    for _, _, p in self.net.recv_all(self.coord_id, tag)
                ]
                self._note_busy(self.coord_id, time.perf_counter() - t0)
                return {self.coord_id: received}
        if child_op.op == "shuffle":
            child = self._traced(child_op, lambda: self._eval_shuffle(child_op))
        else:
            child = self._eval(child_op)
        if child_op.site == COORD:
            return child
        sources = self.worker_ids
        if op.attrs.get("replicated_child"):
            sources = self.worker_ids[:1]

        if mode in ("combine", "topk", "merge"):
            # baseline engines swap in degenerate topologies without a
            # reduce schedule — they keep their flat coordinator merge
            if (
                self.config.reduce_tree
                and len(self.worker_ids) > 1
                and hasattr(self.ntm, "reduce_schedule")
            ):
                return {
                    self.coord_id: self._reduce_tree_gather(op, child, sources, tag, mode)
                }
            return {self.coord_id: self._tree_gather(op, child, sources, tag, mode)}

        # concat: route worker batches up the tree to the coordinator
        for w in sources:
            for b in child.get(w, []):
                t0 = time.perf_counter()
                payload = b.to_bytes()
                self._note_busy(w, time.perf_counter() - t0)
                self._retrying(
                    lambda w=w: self.net.route_send(self.tree, w, self.coord_id, payload, tag),
                    self.coord_id,
                )
        t0 = time.perf_counter()
        received = [
            RowBatch.from_bytes(p) for _, _, p in self.net.recv_all(self.coord_id, tag)
        ]
        self._note_busy(self.coord_id, time.perf_counter() - t0)
        return {self.coord_id: received}

    def _tree_gather(
        self, op: PhysOp, child: SiteData, sources: Sequence[int], tag: str, mode: str
    ) -> list[RowBatch]:
        """Hierarchical gather: every tree node combines what it holds with
        what its children sent before forwarding one reduced batch upward."""
        buffers: dict[int, list[RowBatch]] = {n: [] for n in self.tree.nodes}
        for w in sources:
            buffers[w].extend(child.get(w, []))
        levels = self.tree.levels()
        for level in reversed(levels[1:]):  # deepest level first
            for node in level:
                t0 = time.perf_counter()
                combined = self._combine_level(op, buffers[node], mode)
                parent = self.tree.parent(node)
                # nodes holding nothing stay silent: an idle (possibly down)
                # node must not force a send on the reduction path
                if combined is not None and combined.length > 0:
                    payload = combined.to_bytes()
                    self._note_busy(node, time.perf_counter() - t0)
                    self._retrying(
                        lambda node=node, parent=parent: self.net.send(
                            node, parent, payload, tag
                        ),
                        parent,
                    )
                buffers[node] = []
            # parents pick up what their children pushed
            for node in {self.tree.parent(n) for n in level}:
                t0 = time.perf_counter()
                for _, _, payload in self.net.recv_all(node, tag):
                    buffers[node].append(RowBatch.from_bytes(payload))
                self._note_busy(node, time.perf_counter() - t0)
        t0 = time.perf_counter()
        final = self._combine_level(op, buffers[self.coord_id], mode)
        self._note_busy(self.coord_id, time.perf_counter() - t0)
        return [final] if final is not None else []

    def _reduce_tree_gather(
        self, op: PhysOp, child: SiteData, sources: Sequence[int], tag: str, mode: str
    ) -> list[RowBatch]:
        """Hierarchical reduce over the workers' binomial graph.

        Workers fold partial states pairwise along
        :meth:`BinomialGraphTopology.reduce_schedule` rounds — every
        combine (``_combine_partials`` fold, top-k heap fold, or sorted
        merge) runs on a *worker*, and the coordinator receives a single
        pre-merged stream from the reduction root instead of one stream
        per worker. This is the paper's generalized binomial graph used
        for reduction rather than shuffle routing; with the serial
        driver it moves the O(n) merge work off the coordinator's
        ledger, and on a real cluster off its CPU.

        Nodes whose state is empty stay silent (idle nodes must not
        force sends), matching :meth:`_tree_gather`. The schedule and
        per-round ``recv_all`` order are deterministic functions of the
        worker list, so results stay byte-identical across fault seeds
        and rebalances for a fixed placement.
        """
        states: dict[int, RowBatch | None] = {}
        for w in self.worker_ids:
            batches = child.get(w, []) if w in sources else []
            t0 = time.perf_counter()
            combined = self._combine_level(op, batches, mode) if batches else None
            if combined is not None:
                self._note_busy(w, time.perf_counter() - t0)
            states[w] = combined if combined is not None and combined.length else None
        root = self.worker_ids[0]
        for rnd in self.ntm.reduce_schedule(root):
            receivers: list[int] = []
            for src, dst in rnd:
                st = states.get(src)
                states[src] = None
                if st is None:
                    continue
                t0 = time.perf_counter()
                payload = st.to_bytes()
                self._note_busy(src, time.perf_counter() - t0)
                self._retrying(
                    lambda src=src, dst=dst, payload=payload: self.net.route_send(
                        self.ntm, src, dst, payload, tag
                    ),
                    dst,
                )
                receivers.append(dst)
            for dst in receivers:
                t0 = time.perf_counter()
                received = [
                    RowBatch.from_bytes(p) for _, _, p in self.net.recv_all(dst, tag)
                ]
                if received:
                    have = states.get(dst)
                    parts = ([have] if have is not None else []) + received
                    states[dst] = self._combine_level(op, parts, mode)
                self._note_busy(dst, time.perf_counter() - t0)
        final_state = states.get(root)
        if final_state is not None and final_state.length:
            t0 = time.perf_counter()
            payload = final_state.to_bytes()
            self._note_busy(root, time.perf_counter() - t0)
            self._retrying(
                lambda: self.net.route_send(
                    self.tree, root, self.coord_id, payload, tag
                ),
                self.coord_id,
            )
        t0 = time.perf_counter()
        received = [
            RowBatch.from_bytes(p)
            for _, _, p in self.net.recv_all(self.coord_id, tag)
        ]
        final = self._combine_level(op, received, mode)
        self._note_busy(self.coord_id, time.perf_counter() - t0)
        return [final] if final is not None else []

    def _combine_level(self, op: PhysOp, batches: list[RowBatch], mode: str) -> RowBatch | None:
        merged = RowBatch.concat(op.schema, batches)
        if mode == "combine":
            specs = op.attrs["combine_specs"]
            keys = tuple(op.attrs.get("group_keys", ()))
            return _combine_partials(merged, keys, specs, op.schema)
        if mode == "topk":
            return top_k(merged, op.attrs["sort_keys"], op.attrs["k"])
        if mode == "merge":
            if merged.length == 0:
                return merged
            return merged.take(sort_indices(merged, op.attrs["sort_keys"]))
        return merged

    # -- helpers --------------------------------------------------------------------------
    def _materialize(self, site: int, schema: Schema, batches: list[RowBatch]) -> RowBatch:
        merged = RowBatch.concat(schema, batches)
        if site in self.workers:
            self.workers[site].governor.acquire(0)  # touch for peak tracking
        return merged


# ---------------------------------------------------------------------------
# aggregate partial/final helpers
# ---------------------------------------------------------------------------


def _fold_exact(partial_specs, child_schema: Schema) -> bool:
    """True when per-page-set partial folding is bit-identical to the
    batch-at-a-time fold regardless of where set boundaries fall.

    COUNT and int/bool SUM are exact integer adds; MIN/MAX are
    associative (the NaN-as-NULL skip included). Float/decimal SUM is
    excluded: the engine's grouped float SUM reduces pairwise, so
    different fold boundaries shift the last ulps. Validity-masked
    COUNTs stay on the generic path too.
    """
    for _col, func, arg, valid in partial_specs:
        if valid is not None:
            return False
        if func in ("COUNT", "MIN", "MAX"):
            continue
        if func == "SUM":
            if arg is None or arg not in child_schema:
                return False
            if child_schema.dtype_of(arg) not in (DataType.INT64, DataType.BOOL):
                return False
            continue
        return False
    return True


def _partial_aggregate(batch: RowBatch, keys, partial_specs, out_schema: Schema) -> RowBatch:
    specs = tuple(
        AggSpec(col, func, arg, False, valid) for col, func, arg, valid in partial_specs
    )
    return aggregate_batch(batch, keys, specs, out_schema)


def _combine_partials(batch: RowBatch, keys, partial_specs, out_schema: Schema) -> RowBatch:
    """Re-combine partial rows into the same partial schema (tree levels)."""
    specs = []
    for col, func, arg, valid in partial_specs:
        comb = "SUM" if func in ("SUM", "COUNT") else func
        specs.append(AggSpec(col, comb, col, False, None))
    return aggregate_batch(batch, keys, tuple(specs), out_schema)


def _final_aggregate(batch: RowBatch, keys, final_specs, out_schema: Schema) -> RowBatch:
    specs = []
    post_avg: list[tuple[str, str, str]] = []
    for name, func, cols in final_specs:
        if func == "AVG_COMBINE":
            s_col, c_col = cols
            specs.append(AggSpec(name + "__fs", "SUM", s_col, False, None))
            specs.append(AggSpec(name + "__fc", "SUM", c_col, False, None))
            post_avg.append((name, name + "__fs", name + "__fc"))
        else:
            specs.append(AggSpec(name, func, cols[0], False, None))
    mid_cols = [batch.schema.column(k) for k in keys]
    from ..common.dtypes import DataType
    from ..common.schema import Column

    for s in specs:
        if s.func == "COUNT":
            dt = DataType.INT64
        else:
            dt = batch.schema.dtype_of(s.arg) if s.arg else DataType.INT64
        if s.name in out_schema:
            dt = out_schema.dtype_of(s.name)
        mid_cols.append(Column(s.name, dt))
    mid_schema = Schema(mid_cols)
    mid = aggregate_batch(batch, tuple(keys), tuple(specs), mid_schema)
    cols = {}
    for c in out_schema:
        if c.name in mid.schema:
            cols[c.name] = mid.col(c.name)
    for name, s_col, c_col in post_avg:
        c = mid.col(c_col)
        with np.errstate(invalid="ignore"):
            # zero qualifying rows: AVG is NULL (NaN), not 0
            cols[name] = np.where(
                c > 0, mid.col(s_col) / np.maximum(c, 1), np.nan
            )
    return RowBatch(out_schema, cols)


def _value_hash(arrays: list[np.ndarray]) -> np.ndarray:
    """Stable engine-wide hash of key value tuples.

    Delegates to :func:`hash_value_arrays` — the single mix shared with
    ``RowBatch.hash_codes`` and the storage layer's bloom scan
    pushdown, so build-side and scan-side key hashes always agree.
    """
    return hash_value_arrays(arrays)


def _strip_qualifiers(expr: Expr) -> Expr:
    """Rewrite alias-qualified refs to base names for storage-level scans."""
    from ..optimizer.binder import _map_children

    def fn(e: Expr) -> Expr:
        if isinstance(e, ColumnRef):
            return ColumnRef(e.name.rsplit(".", 1)[-1])
        return _map_children(e, fn)

    return fn(expr)
