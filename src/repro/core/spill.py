"""Spill-to-disk support.

Every HRDBMS operator can spill to disk when memory runs short (paper
§IV "Spilling to Disk"; resource management level 3). The executor
materializes operator inputs into :class:`SpillableList` buffers that
transparently overflow to a worker-local temp file once the operator's
memory grant is exhausted, so queries over data much larger than memory
complete instead of failing — the behaviour the 3 TB experiment relies
on.

File format: length-prefixed RowBatch wire frames appended to a temp
file on the worker's filesystem.
"""

from __future__ import annotations

import itertools
import struct
import threading
from typing import Iterator

from ..common.batch import RowBatch
from ..common.schema import Schema
from ..util.fs import FileSystem

_spill_ids = itertools.count()


class MemoryGovernor:
    """Per-worker memory accounting (resource-management level 2/3).

    Operators acquire grants; when the worker's budget is exceeded the
    governor answers ``should_spill`` affirmatively and tracks how many
    bytes went to disk (benchmark observability).

    Thread-safe: one governor per worker is shared by every concurrent
    query touching that worker, so ``used``/``peak`` reflect the true
    aggregate pressure and spill decisions see the whole node.
    """

    def __init__(self, budget_bytes: int):
        self.budget = budget_bytes
        self.used = 0
        self.spilled_bytes = 0
        self.peak = 0
        self._mu = threading.Lock()
        #: called (outside the lock) with each spilled byte count — the
        #: Database points this at the flight recorder
        self.listener = None

    def acquire(self, n: int) -> None:
        with self._mu:
            self.used += n
            self.peak = max(self.peak, self.used)

    def release(self, n: int) -> None:
        with self._mu:
            self.used = max(0, self.used - n)

    def should_spill(self, extra: int = 0) -> bool:
        with self._mu:
            return self.used + extra > self.budget

    def note_spill(self, n: int) -> None:
        with self._mu:
            self.spilled_bytes += n
        listener = self.listener
        if listener is not None:
            listener(n)


class SpillableList:
    """A batch buffer that overflows to disk under memory pressure."""

    def __init__(self, fs: FileSystem, governor: MemoryGovernor, schema: Schema, tag: str = "spill"):
        self.fs = fs
        self.governor = governor
        self.schema = schema
        self._mem: list[RowBatch] = []
        self._mem_bytes = 0
        self._path: str | None = None
        self._disk_rows = 0
        self._tag = tag

    def append(self, batch: RowBatch) -> None:
        if batch.length == 0:
            return
        nb = batch.nbytes
        if self.governor.should_spill(nb):
            self._spill_out()
            self._write(batch)
            return
        self._mem.append(batch)
        self._mem_bytes += nb
        self.governor.acquire(nb)

    def _spill_out(self) -> None:
        for b in self._mem:
            self._write(b)
        self.governor.release(self._mem_bytes)
        self._mem = []
        self._mem_bytes = 0

    def _write(self, batch: RowBatch) -> None:
        if self._path is None:
            self._path = f"temp/{self._tag}{next(_spill_ids)}.spill"
        fh = self.fs.open(self._path)
        frame = batch.to_bytes()
        off = fh.size()
        fh.pwrite(off, struct.pack("<I", len(frame)) + frame)
        fh.close()
        self._disk_rows += batch.length
        self.governor.note_spill(len(frame))

    def __iter__(self) -> Iterator[RowBatch]:
        if self._path is not None:
            fh = self.fs.open(self._path, create=False)
            size = fh.size()
            off = 0
            while off < size:
                (n,) = struct.unpack("<I", fh.pread(off, 4))
                off += 4
                yield RowBatch.from_bytes(fh.pread(off, n))
                off += n
            fh.close()
        yield from self._mem

    def materialize(self) -> RowBatch:
        return RowBatch.concat(self.schema, list(self))

    @property
    def rows(self) -> int:
        return self._disk_rows + sum(b.length for b in self._mem)

    @property
    def spilled(self) -> bool:
        return self._path is not None

    def close(self) -> None:
        if self._path is not None:
            self.fs.delete(self._path)
            self._path = None
        self.governor.release(self._mem_bytes)
        self._mem = []
        self._mem_bytes = 0
