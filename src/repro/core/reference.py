"""Single-node logical-plan executor.

Interprets a logical plan directly over fully materialized batches.
Serves three roles:

1. the *reference oracle* the distributed engine is tested against,
2. the executor behind :meth:`Database.explain`-level unit tests,
3. the coordinator-local fallback for trivial queries.

Semantics notes (engine-wide): the engine stores no NULLs. Outer joins
mark unmatched rows via a boolean match column (fill values are type
defaults); empty scalar subqueries yield zero joined rows, which matches
SQL's NULL-comparison-is-false filtering behaviour. Aggregates over
empty input follow SQL: COUNT=0, AVG/MIN/MAX=NULL (encoded as NaN for
numeric columns — which promotes integer/date outputs to float64 NULL
holes — and None for strings; ``RowBatch.rows`` delivers them as None).
SUM over empty input deliberately stays 0: the distributed COUNT is
finalized as a SUM over partial counts, which must not turn a true zero
into NULL.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.batch import RowBatch
from ..common.dtypes import DataType
from ..common.errors import ExecutionError
from ..common.schema import Schema
from ..sql.ast import BinaryOp, Expr, column_refs
from ..sql.compiler import compile_expr, compile_predicate
from .kernels import (
    factorize,
    factorize_pair,
    group_aggregate,
    group_count_distinct,
    group_sum_distinct,
    join_match_indices,
    sort_indices,
)
from ..optimizer.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    UnionAll,
)

TableSource = Callable[[str], RowBatch]


def execute_logical(plan: LogicalPlan, source: TableSource) -> RowBatch:
    return _Exec(source).run(plan)


class _Exec:
    def __init__(self, source: TableSource):
        self.source = source

    def run(self, plan: LogicalPlan) -> RowBatch:
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Filter):
            child = self.run(plan.child)
            pred = compile_predicate(plan.predicate, child.schema)
            return child.filter(pred(child))
        if isinstance(plan, Project):
            child = self.run(plan.child)
            return project_batch(child, plan.exprs, plan.schema)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, Aggregate):
            child = self.run(plan.child)
            return aggregate_batch(child, plan.group_keys, plan.aggs, plan.schema)
        if isinstance(plan, Sort):
            child = self.run(plan.child)
            if child.length == 0:
                return child
            return child.take(sort_indices(child, plan.keys))
        if isinstance(plan, Limit):
            child = self.run(plan.child)
            return child.slice(0, plan.n)
        if isinstance(plan, Distinct):
            child = self.run(plan.child)
            return distinct_batch(child)
        if isinstance(plan, UnionAll):
            parts = [self.run(c) for c in plan.children()]
            aligned = [p.project([p.schema.names()[i] for i in range(len(plan.schema))]) for p in parts]
            renamed = [
                a.rename(dict(zip(a.schema.names(), plan.schema.names()))) for a in aligned
            ]
            return RowBatch.concat(plan.schema, renamed)
        raise ExecutionError(f"no executor for {type(plan).__name__}")

    # -- scans -------------------------------------------------------------------
    def _scan(self, plan: Scan) -> RowBatch:
        if plan.table == "__dual":
            return RowBatch(plan.schema, {"__one": np.array([1], dtype=np.int64)})
        data = self.source(plan.table)
        mapping = {}
        for c in plan.schema:
            src = data.schema.resolve(c.unqualified)
            mapping[c.name] = data.col(src)
        return RowBatch(plan.schema, mapping)

    # -- joins ------------------------------------------------------------------
    def _join(self, plan: Join) -> RowBatch:
        left = self.run(plan.left)
        right = self.run(plan.right)
        return join_batches(left, right, plan)


# ---------------------------------------------------------------------------
# shared batch-level operator implementations
# ---------------------------------------------------------------------------


def project_batch(child: RowBatch, exprs, out_schema: Schema) -> RowBatch:
    cols = {}
    for (name, e), col in zip(exprs, out_schema.columns):
        compiled = compile_expr(e, child.schema)
        arr = np.asarray(compiled.fn(child))
        cols[name] = arr
    return RowBatch(out_schema, cols)


def split_equi_condition(
    cond: Expr | None, lschema: Schema, rschema: Schema
) -> tuple[list[tuple[Expr, Expr]], list[Expr]]:
    """Equi pairs as (left-side expr, right-side expr) + residual conjuncts."""
    if cond is None:
        return [], []
    pairs: list[tuple[Expr, Expr]] = []
    residual: list[Expr] = []
    stack = [cond]
    while stack:
        e = stack.pop()
        if isinstance(e, BinaryOp) and e.op == "AND":
            stack += [e.left, e.right]
            continue
        if isinstance(e, BinaryOp) and e.op == "=":
            l_side = _side_of(e.left, lschema, rschema)
            r_side = _side_of(e.right, lschema, rschema)
            if l_side == "left" and r_side == "right":
                pairs.append((e.left, e.right))
                continue
            if l_side == "right" and r_side == "left":
                pairs.append((e.right, e.left))
                continue
        residual.append(e)
    return pairs, residual


def _side_of(expr: Expr, lschema: Schema, rschema: Schema) -> str:
    refs = column_refs(expr)
    if not refs:
        return "const"
    in_l = all(
        lschema.try_resolve(r.key) or lschema.try_resolve(r.name) for r in refs
    )
    in_r = all(
        rschema.try_resolve(r.key) or rschema.try_resolve(r.name) for r in refs
    )
    if in_l and not in_r:
        return "left"
    if in_r and not in_l:
        return "right"
    if in_l and in_r:
        # ambiguous: prefer exact qualified resolution
        exact_l = all(lschema.try_resolve(r.key) for r in refs)
        exact_r = all(rschema.try_resolve(r.key) for r in refs)
        if exact_l and not exact_r:
            return "left"
        if exact_r and not exact_l:
            return "right"
        return "left"
    return "both"


def join_batches(left: RowBatch, right: RowBatch, plan: Join) -> RowBatch:
    pairs, residual = split_equi_condition(
        plan.condition, plan.left.schema, plan.right.schema
    )
    return hash_join(
        left,
        right,
        plan.kind,
        pairs,
        residual,
        plan.schema,
        plan.match_column if plan.kind == "left" else None,
        plan.left.schema,
        plan.right.schema,
    )


def hash_join(
    left: RowBatch,
    right: RowBatch,
    kind: str,
    pairs: list[tuple[Expr, Expr]],
    residual: list[Expr],
    out_schema: Schema,
    match_col: str | None,
    lschema: Schema | None = None,
    rschema: Schema | None = None,
) -> RowBatch:
    """Kernel-level join shared by the reference and distributed engines."""
    lschema = lschema if lschema is not None else left.schema
    rschema = rschema if rschema is not None else right.schema

    if kind == "single":
        if right.length > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if right.length == 0:
            return RowBatch.empty(out_schema)
        cols = dict(left.columns)
        for c in rschema:
            cols[c.name] = np.repeat(right.col(c.name), left.length)
        return RowBatch(out_schema, cols)

    if pairs:
        lkeys = [np.asarray(compile_expr(le, left.schema).fn(left)) for le, _ in pairs]
        rkeys = [np.asarray(compile_expr(re, right.schema).fn(right)) for _, re in pairs]
        lcode, rcode = factorize_pair(lkeys, rkeys)
        li, ri = join_match_indices(lcode, rcode)
    else:
        # cross pairs (guarded: a missed pushdown must fail fast, not OOM)
        if left.length * right.length > 50_000_000:
            raise ExecutionError(
                f"cross product of {left.length} x {right.length} rows refused; "
                "run predicate pushdown first"
            )
        li = np.repeat(np.arange(left.length), right.length)
        ri = np.tile(np.arange(right.length), left.length)

    if residual and len(li):
        combined = _combine(left.take(li), right.take(ri))
        mask = np.ones(len(li), dtype=bool)
        for r in residual:
            mask &= compile_predicate(r, combined.schema)(combined)
        li, ri = li[mask], ri[mask]

    if kind in ("inner", "cross"):
        cols = {}
        lt = left.take(li)
        rt = right.take(ri)
        for c in lschema:
            cols[c.name] = lt.col(c.name)
        for c in rschema:
            cols[c.name] = rt.col(c.name)
        return RowBatch(out_schema, cols)

    if kind == "semi":
        keep = np.zeros(left.length, dtype=bool)
        keep[li] = True
        return left.filter(keep)

    if kind == "anti":
        keep = np.ones(left.length, dtype=bool)
        keep[li] = False
        return left.filter(keep)

    if kind == "left":
        matched = np.zeros(left.length, dtype=bool)
        matched[li] = True
        unmatched_idx = np.flatnonzero(~matched)
        all_li = np.concatenate([li, unmatched_idx])
        lt = left.take(all_li)
        cols = {c.name: lt.col(c.name) for c in lschema}
        n_match = len(li)
        n_un = len(unmatched_idx)
        rt = right.take(ri)
        for c in rschema:
            fill = _fill_value(c.dtype)
            pad = np.full(n_un, fill, dtype=c.dtype.numpy_dtype)
            if c.dtype == DataType.STRING:
                pad = np.empty(n_un, dtype=object)
                pad[:] = ""
            cols[c.name] = np.concatenate([rt.col(c.name), pad]) if n_match + n_un else np.empty(0, dtype=c.dtype.numpy_dtype)
        mcol = match_col or out_schema.columns[-1].name
        cols[mcol] = np.concatenate(
            [np.ones(n_match, dtype=bool), np.zeros(n_un, dtype=bool)]
        )
        return RowBatch(out_schema, cols)

    raise ExecutionError(f"unsupported join kind {kind}")


def _combine(lt: RowBatch, rt: RowBatch) -> RowBatch:
    schema = lt.schema.concat(rt.schema)
    cols = dict(lt.columns)
    cols.update(rt.columns)
    return RowBatch(schema, cols)


def _fill_value(dt: DataType):
    if dt == DataType.STRING:
        return ""
    if dt == DataType.BOOL:
        return False
    return 0


def aggregate_batch(child: RowBatch, group_keys, aggs, out_schema: Schema) -> RowBatch:

    if group_keys:
        key_cols = [child.col(k) for k in group_keys]
        codes, n_groups = factorize(key_cols)
        # representative row per group (first occurrence)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_codes)) + 1]
        ) if len(sorted_codes) else np.empty(0, np.int64)
        rep = order[boundaries.astype(np.int64)] if len(sorted_codes) else np.empty(0, np.int64)
        rep_codes = sorted_codes[boundaries.astype(np.int64)] if len(sorted_codes) else np.empty(0, np.int64)
        cols = {}
        for k in group_keys:
            cols[k] = child.col(k)[rep]
        for spec in aggs:
            values = child.col(spec.arg) if spec.arg is not None else None
            valid = child.col(spec.valid_col).astype(bool) if spec.valid_col else None
            if spec.distinct and spec.func == "COUNT":
                per_group = group_count_distinct(codes, n_groups, values)
            elif spec.distinct and spec.func == "SUM":
                per_group = group_sum_distinct(codes, n_groups, values)
            else:
                per_group = group_aggregate(codes, n_groups, spec.func, values, valid)
            arr = per_group[rep_codes]
            cols[spec.name] = _cast_agg(arr, out_schema.dtype_of(spec.name))
        return RowBatch(out_schema, cols)

    # global aggregate: exactly one row
    cols = {}
    for spec in aggs:
        values = child.col(spec.arg) if spec.arg is not None else None
        valid = child.col(spec.valid_col).astype(bool) if spec.valid_col else None
        cols[spec.name] = _cast_agg(
            np.array([_global_agg(spec, values, valid, child.length)]),
            out_schema.dtype_of(spec.name),
        )
    return RowBatch(out_schema, cols)


def _global_agg(spec, values, valid, n_rows: int):
    if spec.func == "COUNT":
        if valid is not None:
            return int(valid.sum())
        if spec.distinct and values is not None:
            return len(np.unique(values))
        return len(values) if values is not None else n_rows
    if valid is not None and values is not None:
        values = values[valid]
    if values is not None and values.dtype == object:
        # None marks NULL (e.g. a MIN partial from an empty site)
        values = values[[x is not None for x in values.tolist()]]
    elif values is not None and np.issubdtype(values.dtype, np.floating):
        # NaN marks NULL engine-wide; NULLs never qualify
        values = values[~np.isnan(values)]
    if values is None or len(values) == 0:
        # SQL: aggregates over no qualifying rows are NULL — except SUM,
        # which stays 0 so COUNT's final SUM-over-partials stays exact
        return 0 if spec.func == "SUM" else None
    if spec.distinct:
        values = np.unique(values)
    if spec.func == "SUM":
        return values.sum()
    if spec.func == "AVG":
        return float(values.mean())
    if spec.func == "MIN":
        return values.min() if values.dtype != object else min(values)
    if spec.func == "MAX":
        return values.max() if values.dtype != object else max(values)
    raise ExecutionError(f"unknown aggregate {spec.func}")


def _cast_agg(arr: np.ndarray, dt: DataType) -> np.ndarray:
    if dt == DataType.STRING:
        if arr.dtype == object:
            return arr
        out = np.empty(len(arr), dtype=object)
        out[:] = [str(x) for x in arr]
        return out
    arr = np.asarray(arr)
    if arr.dtype == object:
        # scalar path: None marks NULL; numeric targets encode it as NaN
        vals = [np.nan if x is None else x for x in arr.tolist()]
        has_null = any(x is None for x in arr.tolist())
        if has_null and dt != DataType.FLOAT64:
            return np.asarray(vals, dtype=np.float64)
        return np.asarray(vals, dtype=dt.numpy_dtype)
    if (
        arr.dtype == np.float64
        and dt != DataType.FLOAT64
        and np.isnan(arr).any()
    ):
        # NaN marks NULL (group with no qualifying rows): keep the
        # float64 NULL-hole array instead of casting NULL away
        return arr
    return np.asarray(arr, dtype=dt.numpy_dtype)


def distinct_batch(batch: RowBatch) -> RowBatch:
    if batch.length == 0:
        return batch
    codes, _ = factorize([batch.col(c.name) for c in batch.schema])
    _, first = np.unique(codes, return_index=True)
    return batch.take(np.sort(first))


# COUNT global with no arg: len of batch — handled via spec.arg None


def global_count_rows(batch: RowBatch) -> int:
    return batch.length
