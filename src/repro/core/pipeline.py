"""Morsel-driven pipelined execution (paper §III-B, §IV).

HRDBMS's per-node performance claim rests on *pipelining*: the engine
never materializes a full intermediate between operators. This module
supplies the pieces the distributed executor composes into that shape:

* :func:`fuse_chain` detects a linear ``scan -> filter -> project``
  chain of WORKERS-site operators and packages it as a
  :class:`FusedChain` — a single-pass batch transformer with per-op
  row accounting (EXPLAIN ANALYZE still sees every fused operator).
* :func:`run_tasks_ordered` is the morsel driver: per-fragment scan
  tasks run on a bounded thread pool (generalizing the seed's
  scan-only DOP to the whole fused chain), and results are consumed in
  deterministic submission order so downstream network sends — and
  therefore the fault injector's event clock — are reproducible.
* :class:`InflightTracker` measures the peak number of produced-but-
  unconsumed batches, the observable that distinguishes streaming from
  operator-at-a-time execution.

Exchange streaming (shuffle/broadcast/gather sends issued per morsel
batch) and aggregate folding live in :mod:`repro.core.executor`, which
owns the network and failover machinery the sends must thread through.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..common.batch import RowBatch
from ..optimizer.physical import WORKERS, PhysOp
from ..sql.compiler import compile_predicate
from ..telemetry.metrics import Counter as TelemetryCounter
from .reference import project_batch


@dataclass
class PipelineMetrics:
    """Per-query pipelining counters surfaced through ExecStats."""

    #: fused chains built (one per chain per query, executed SPMD)
    pipelines: int = 0
    #: operators folded into those chains (scan included)
    fused_ops: int = 0
    #: morsel tasks executed (one per table fragment per site)
    morsels: int = 0


class InflightTracker:
    """Counts batches produced by morsel tasks but not yet consumed."""

    def __init__(self) -> None:
        self._cur = 0
        self.peak = 0
        self._lock = threading.Lock()

    def produced(self, n: int) -> None:
        with self._lock:
            self._cur += n
            if self._cur > self.peak:
                self.peak = self._cur

    def consumed(self, n: int) -> None:
        with self._lock:
            self._cur -= n


@dataclass
class FusedChain:
    """A fusable linear operator chain rooted at a worker-site scan.

    ``transforms`` holds the filter/project/hash-join ops bottom-up
    (nearest the scan first). A ``hashjoin`` transform is a *probe* step:
    the chain runs down the join's probe side, while the build side is a
    separate subtree the executor evaluates once per chain run (a
    build-once :class:`~repro.core.kernels.JoinHashTable` per site) and
    binds as a per-site probe closure. :meth:`steps` compiles the
    site-independent pieces once; :func:`apply_steps` then runs a batch
    through the whole chain in one pass.
    """

    scan: PhysOp
    transforms: list[PhysOp]
    _steps: Optional[list] = field(default=None, repr=False)

    @property
    def root(self) -> PhysOp:
        return self.transforms[-1] if self.transforms else self.scan

    @property
    def n_ops(self) -> int:
        return 1 + len(self.transforms)

    @property
    def probe_ops(self) -> list[PhysOp]:
        """Hash-join probes folded into the chain, bottom-up."""
        return [t for t in self.transforms if t.op == "hashjoin"]

    def steps(self) -> list[tuple[int, str, object]]:
        """Compiled (op_id, kind, payload) list; compiled lazily once.

        Call from the driver thread before spawning morsel tasks — the
        compiled closures are pure and safe to share across threads.
        Probe steps carry no payload here: their per-site closures (the
        hash table is per site) are passed to :func:`apply_steps`
        separately.
        """
        if self._steps is None:
            steps: list[tuple[int, str, object]] = []
            for t in self.transforms:
                child_schema = t.children[0].schema
                if t.op == "filter":
                    steps.append((t.id, "filter", compile_predicate(t.attrs["predicate"], child_schema)))
                elif t.op == "hashjoin":
                    steps.append((t.id, "probe", None))
                else:
                    steps.append((t.id, "project", (t.attrs["exprs"], t.schema)))
            self._steps = steps
        return self._steps


def streamable_join(op: PhysOp) -> bool:
    """Probe-order-preserving joins stream: inner/semi/anti with equi
    pairs. Left/single/cross joins need the whole probe side (unmatched
    padding order, scalar cardinality checks) and never fuse."""
    return bool(op.attrs.get("pairs")) and op.attrs.get("kind") in (
        "inner",
        "semi",
        "anti",
    )


def fuse_chain(op: PhysOp) -> FusedChain | None:
    """Detect a linear chain of filter/project/hash-join-probe operators
    over a WORKERS-site scan.

    A hash join continues the chain down its *probe* (left) side when the
    join kind preserves probe order; the build side is recorded on the
    transform for the executor to evaluate separately — so join-on-join
    plans (e.g. TPC-H Q10's two joins) fold into one single-pass task.
    Returns None when ``op`` is not fusable (wrong site, a non-linear
    shape, or a leaf other than a table scan); callers then fall back to
    operator-at-a-time evaluation.
    """
    if op.site != WORKERS:
        return None
    transforms: list[PhysOp] = []
    cur = op
    while True:
        if cur.op in ("filter", "project"):
            if len(cur.children) != 1:
                return None
        elif cur.op == "hashjoin" and streamable_join(cur):
            if len(cur.children) != 2:
                return None
        else:
            break
        transforms.append(cur)
        cur = cur.children[0]
        if cur.site != WORKERS:
            return None
    if cur.op != "scan":
        return None
    return FusedChain(scan=cur, transforms=list(reversed(transforms)))


def apply_steps(
    batch: RowBatch,
    steps: list[tuple[int, str, object]],
    counts: dict[int, int],
    probes: Optional[dict[int, Callable[[RowBatch], RowBatch]]] = None,
) -> RowBatch | None:
    """Run one batch through a chain's compiled transforms, single pass.

    ``probes`` maps a fused hash join's op id to the current site's probe
    closure (built once per chain run over that site's build data).
    Accumulates each fused operator's output row count into ``counts``
    (EXPLAIN ANALYZE accounting). Returns None as soon as a filter or
    probe leaves zero rows — the rest of the chain is skipped, matching
    the operator-at-a-time engine's empty-batch dropping.
    """
    for op_id, kind, payload in steps:
        if kind == "filter":
            batch = batch.filter(payload(batch))
            counts[op_id] = counts.get(op_id, 0) + batch.length
            if batch.length == 0:
                return None
        elif kind == "probe":
            batch = probes[op_id](batch)
            counts[op_id] = counts.get(op_id, 0) + batch.length
            if batch.length == 0:
                return None
        else:
            exprs, schema = payload
            batch = project_batch(batch, exprs, schema)
            counts[op_id] = counts.get(op_id, 0) + batch.length
    return batch


def coalesce_batches(
    batches, schema, target_rows: int
) -> Iterator[RowBatch]:
    """Merge consecutive streamed batches until ``target_rows`` is reached.

    Morsel outputs can be small (a scan batch split per destination, a
    filter that drops most rows); per-batch costs downstream — hash
    partitioning, wire encoding, partial-aggregate folds — have fixed
    NumPy setup overhead that small batches amortize badly. Coalescing
    holds at most ``target_rows`` rows, so memory stays bounded while
    downstream work runs at full batch width. Grouping depends only on
    batch sizes, which are deterministic, so exchange ordering (and the
    fault injector's clock) is unaffected by thread scheduling.
    """
    pending: list[RowBatch] = []
    rows = 0
    for b in batches:
        if not b.length:
            continue
        pending.append(b)
        rows += b.length
        if rows >= target_rows:
            yield pending[0] if len(pending) == 1 else RowBatch.concat(schema, pending)
            pending, rows = [], 0
    if pending:
        yield pending[0] if len(pending) == 1 else RowBatch.concat(schema, pending)


class MorselScheduler:
    """A shared morsel worker pool multiplexed across concurrent queries.

    The seed executor instantiated a fresh thread pool per query (per
    fused chain, even); under concurrent sessions that multiplies OS
    threads by the number of in-flight queries and defeats the morsel
    model's core idea — a fixed worker set pulling tasks from whoever
    has work. This scheduler owns one lazily-started pool sized to the
    machine (or ``morsel_threads``); queries submit task lists through
    :meth:`run_ordered`, which keeps at most ``dop`` of *that query's*
    tasks in flight (preserving each query's intra-query DOP grant)
    while the pool interleaves tasks from all queries.

    Deadlock-free by construction: morsel tasks are leaf closures that
    never submit to the scheduler themselves, so pool threads never
    block on pool work.
    """

    def __init__(self, max_threads: int = 0):
        import os

        self.max_threads = max_threads if max_threads > 0 else min(32, (os.cpu_count() or 4))
        self._pool = None
        self._mu = threading.Lock()
        #: tasks ever submitted (observability)
        self.submitted = 0
        #: wall seconds pool threads spent running tasks; per-thread
        #: sharded, so worker threads record without a lock
        self.busy = TelemetryCounter()

    def _ensure_pool(self):
        with self._mu:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_threads, thread_name_prefix="morsel"
                )
            return self._pool

    def run_ordered(self, tasks: list[Callable[[], object]], dop: int) -> Iterator[object]:
        """Run ``tasks`` on the shared pool, at most ``dop`` in flight,
        yielding results in submission order."""
        from collections import deque as _deque

        pool = self._ensure_pool()
        window = max(1, dop)
        inflight: "_deque" = _deque()
        it = iter(tasks)
        try:
            for t in it:
                inflight.append(pool.submit(self._timed, t))
                self.submitted += 1
                if len(inflight) >= window:
                    yield inflight.popleft().result()
            while inflight:
                yield inflight.popleft().result()
        finally:
            # a consumer bailing early must not leak queued futures
            for f in inflight:
                f.cancel()

    def _timed(self, task: Callable[[], object]) -> object:
        t0 = time.perf_counter()
        try:
            return task()
        finally:
            self.busy.inc(time.perf_counter() - t0)

    def shutdown(self) -> None:
        with self._mu:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def run_tasks_ordered(
    tasks: list[Callable[[], object]],
    dop: int,
    threaded: bool,
    scheduler: MorselScheduler | None = None,
) -> Iterator[object]:
    """Morsel driver: run tasks with up to ``dop`` threads, yielding
    results in submission order (deterministic regardless of thread
    scheduling). With a :class:`MorselScheduler` the tasks run on the
    shared cross-query pool; otherwise a private pool is spun up, and
    when threading is disabled or pointless execution is inline."""
    if threaded and dop > 1 and len(tasks) > 1:
        if scheduler is not None:
            yield from scheduler.run_ordered(tasks, dop)
            return
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=dop) as pool:
            futures = [pool.submit(t) for t in tasks]
            for f in futures:
                yield f.result()
    else:
        for t in tasks:
            yield t()
