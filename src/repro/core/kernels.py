"""Vectorized relational kernels.

All heavy row-at-a-time work is replaced by NumPy primitives (the
hpc-parallel guides' core rule): keys are *factorized* into dense exact
integer codes with ``np.unique``, joins become sorted-code range lookups
expanded with ``repeat``/``cumsum``, and aggregations become
``bincount``/``reduceat`` over code-sorted arrays. The same kernels back
the single-node reference executor and the distributed operators, so
"distributed == reference" tests compare two compositions of one
implementation-correct core.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..common.batch import RowBatch
from ..common.errors import ExecutionError


# ---------------------------------------------------------------------------
# key factorization
# ---------------------------------------------------------------------------


def factorize_pair(
    left_cols: Sequence[np.ndarray], right_cols: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Exact composite codes for join keys, shared dictionary across sides.

    Equal key tuples (across sides) get equal codes; unequal get unequal.
    """
    if len(left_cols) != len(right_cols):
        raise ExecutionError("join key arity mismatch")
    nl = len(left_cols[0]) if left_cols else 0
    nr = len(right_cols[0]) if right_cols else 0
    lcode = np.zeros(nl, dtype=np.int64)
    rcode = np.zeros(nr, dtype=np.int64)
    for lc, rc in zip(left_cols, right_cols):
        both = np.concatenate([np.asarray(lc), np.asarray(rc)])
        _, inv = np.unique(both, return_inverse=True)
        k = int(inv.max()) + 1 if len(inv) else 1
        lcode = lcode * k + inv[:nl]
        rcode = rcode * k + inv[nl:]
    return lcode, rcode


def factorize(cols: Sequence[np.ndarray]) -> tuple[np.ndarray, int]:
    """Exact composite codes for one relation; returns (codes, n_groups)."""
    if not cols:
        return np.zeros(0, dtype=np.int64), 0
    n = len(cols[0])
    code = np.zeros(n, dtype=np.int64)
    for c in cols:
        _, inv = np.unique(np.asarray(c), return_inverse=True)
        k = int(inv.max()) + 1 if len(inv) else 1
        code = code * k + inv
    # re-densify the combined code
    uniq, dense = np.unique(code, return_inverse=True)
    return dense.astype(np.int64), len(uniq)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def join_match_indices(
    lcode: np.ndarray, rcode: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left_idx, right_idx) pairs for equal codes."""
    order = np.argsort(rcode, kind="stable")
    sorted_r = rcode[order]
    starts = np.searchsorted(sorted_r, lcode, side="left")
    ends = np.searchsorted(sorted_r, lcode, side="right")
    counts = ends - starts
    left_idx = np.repeat(np.arange(len(lcode)), counts)
    if len(left_idx) == 0:
        return left_idx, left_idx.copy()
    # positions within sorted_r for each match, fully vectorized:
    # for row i the matches are sorted positions starts[i] .. ends[i]-1
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    flat = np.arange(counts.sum()) - np.repeat(offsets, counts) + np.repeat(starts, counts)
    right_idx = order[flat]
    return left_idx, right_idx


class JoinHashTable:
    """Build-once / probe-many join table for streaming pipelines.

    ``factorize_pair`` re-dictionarizes both sides on every call, so a
    pipelined probe (one call per probe batch) would rebuild the build
    side's dictionary per batch. This table factorizes the build side
    once — per-column sorted dictionaries plus a composite code with one
    sentinel slot per column for probe values absent from the build side
    — and each probe batch only pays ``searchsorted`` lookups.

    Output ordering is identical to ``factorize_pair`` +
    ``join_match_indices``: probe-major, build rows in original order
    within a key (stable sort), so a per-batch probe concatenated over
    probe batches reproduces the materialized join bit-for-bit.
    """

    __slots__ = ("dicts", "order", "sorted_codes", "n_build")

    def __init__(self, build_cols: Sequence[np.ndarray]):
        cols = [np.asarray(c) for c in build_cols]
        self.n_build = len(cols[0]) if cols else 0
        self.dicts: list[np.ndarray] = []
        code = np.zeros(self.n_build, dtype=np.int64)
        for c in cols:
            uniq, inv = np.unique(c, return_inverse=True)
            self.dicts.append(uniq)
            # +1 reserves a sentinel code per column for probe misses
            code = code * (len(uniq) + 1) + inv
        self.order = np.argsort(code, kind="stable")
        self.sorted_codes = code[self.order]

    def _probe_codes(self, probe_cols: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        cols = [np.asarray(c) for c in probe_cols]
        if len(cols) != len(self.dicts):
            raise ExecutionError("join key arity mismatch")
        n = len(cols[0]) if cols else 0
        code = np.zeros(n, dtype=np.int64)
        miss = np.zeros(n, dtype=bool)
        for uniq, c in zip(self.dicts, cols):
            k = len(uniq) + 1
            if len(uniq) == 0:
                miss[:] = True
                inv = np.zeros(n, dtype=np.int64)
            else:
                pos = np.searchsorted(uniq, c)
                pos_c = np.minimum(pos, len(uniq) - 1)
                hit = uniq[pos_c] == c
                miss |= ~hit
                inv = np.where(hit, pos_c, len(uniq)).astype(np.int64)
            code = code * k + inv
        return code, miss

    def match_indices(self, probe_cols: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """All matching (probe_idx, build_idx) pairs for one probe batch."""
        code, miss = self._probe_codes(probe_cols)
        if len(code):
            # build codes are non-negative, so -1 can never match
            code = np.where(miss, np.int64(-1), code)
        starts = np.searchsorted(self.sorted_codes, code, side="left")
        ends = np.searchsorted(self.sorted_codes, code, side="right")
        counts = ends - starts
        probe_idx = np.repeat(np.arange(len(code)), counts)
        if len(probe_idx) == 0:
            return probe_idx, probe_idx.copy()
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        flat = np.arange(counts.sum()) - np.repeat(offsets, counts) + np.repeat(starts, counts)
        return probe_idx, self.order[flat]


def match_mask(lcode: np.ndarray, rcode: np.ndarray) -> np.ndarray:
    """Boolean per left row: does any right row share its code? (semi join)"""
    uniq_r = np.unique(rcode)
    pos = np.searchsorted(uniq_r, lcode)
    pos = np.clip(pos, 0, len(uniq_r) - 1) if len(uniq_r) else np.zeros(len(lcode), int)
    if not len(uniq_r):
        return np.zeros(len(lcode), dtype=bool)
    return uniq_r[pos] == lcode


# Bloom filters moved to common.bloom so the storage layer can test
# fragment zone-maps and dictionary code space against build-side
# filters without importing repro.core; re-exported here for callers.
from ..common.bloom import bloom_filter_codes, bloom_filter_test  # noqa: E402,F401


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def _int_like(dtype: np.dtype) -> bool:
    """int/bool dtypes whose sums must use the exact int64 path."""
    return dtype != object and (np.issubdtype(dtype, np.integer) or dtype == np.bool_)


def group_aggregate(
    codes: np.ndarray,
    n_groups: int,
    func: str,
    values: np.ndarray | None,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """Aggregate ``values`` per group code. ``func`` in SUM/COUNT/MIN/MAX/AVG.

    ``valid`` masks rows that count (aggregates over an outer join's
    matched rows). Outputs an array indexed by group code.

    NULL semantics: a group with no qualifying rows yields SQL NULL for
    AVG/MIN/MAX, encoded as NaN (numeric columns are promoted to float64
    when NULL holes appear; object columns use None). COUNT yields 0 and
    SUM yields 0 — the distributed COUNT is finalized as a SUM over
    partial counts (see ``dataflow._split_aggs``), which must stay 0
    over empty input, so SUM-of-nothing deliberately stays 0 engine-wide.
    NaN inputs to MIN/MAX are treated as NULLs and skipped (``fmin`` /
    ``fmax``), so combining partials where an empty site contributed a
    NULL cannot corrupt a real extremum.
    """
    if func == "COUNT":
        if valid is not None:
            return np.bincount(codes, weights=valid.astype(np.float64), minlength=n_groups).astype(np.int64)
        return np.bincount(codes, minlength=n_groups).astype(np.int64)
    if values is None:
        raise ExecutionError(f"{func} needs values")
    if valid is not None:
        keep = valid.astype(bool)
        codes = codes[keep]
        values = values[keep]
    if func == "SUM":
        if _int_like(values.dtype):
            # exact integer path: float64 bincount weights silently
            # round sums beyond 2**53
            out = np.zeros(n_groups, dtype=np.int64)
            np.add.at(out, codes, values.astype(np.int64, copy=False))
            return out
        return np.bincount(codes, weights=values.astype(np.float64), minlength=n_groups)
    if func == "AVG":
        s = np.bincount(codes, weights=values.astype(np.float64), minlength=n_groups)
        c = np.bincount(codes, minlength=n_groups)
        with np.errstate(invalid="ignore"):
            return np.where(c > 0, s / np.maximum(c, 1), np.nan)
    if func in ("MIN", "MAX"):
        return _group_min_max(codes, n_groups, func, values)
    raise ExecutionError(f"unknown aggregate {func}")


def _group_min_max(codes: np.ndarray, n_groups: int, func: str, values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        out = np.full(n_groups, None, dtype=object)
        if len(codes) == 0:
            return out
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_vals = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_vals)]])
        present = sorted_codes[starts]
        for g, a, b in zip(present, starts, ends):
            seg = [x for x in sorted_vals[a:b] if x is not None]
            if seg:
                out[g] = min(seg) if func == "MIN" else max(seg)
        return out
    if len(codes) == 0:
        return np.full(n_groups, np.nan, dtype=np.float64)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate([[0], boundaries])
    present = sorted_codes[starts]
    if np.issubdtype(values.dtype, np.floating):
        ufunc = np.fmin if func == "MIN" else np.fmax  # NaN = NULL: skip
    else:
        ufunc = np.minimum if func == "MIN" else np.maximum
    segd = ufunc.reduceat(sorted_vals, starts)
    if len(present) == n_groups:
        out = np.empty(n_groups, dtype=values.dtype)
        out[present] = segd
        return out
    # groups with no rows are NULL: promote to float64 with NaN holes
    out = np.full(n_groups, np.nan, dtype=np.float64)
    out[present] = segd.astype(np.float64)
    return out


def _distinct_group_pairs(
    codes: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One representative row index per distinct (group, value) pair.

    Returns (group codes, original row indices) of the representatives.
    Implemented with ``lexsort`` over (group, value-code) rather than the
    pair encoding ``codes * k + vcodes``, which overflows int64 once
    ``n_groups * n_distinct_values`` exceeds 2**63 (high-cardinality
    GROUP BY plus a near-unique DISTINCT argument).
    """
    vcodes, _ = factorize([values])
    if len(codes) == 0:
        return codes.astype(np.int64), np.zeros(0, dtype=np.int64)
    order = np.lexsort((vcodes, codes))
    gc = codes[order]
    vc = vcodes[order]
    new = np.ones(len(gc), dtype=bool)
    new[1:] = (gc[1:] != gc[:-1]) | (vc[1:] != vc[:-1])
    return gc[new].astype(np.int64), order[new]


def group_count_distinct(codes: np.ndarray, n_groups: int, values: np.ndarray) -> np.ndarray:
    """COUNT(DISTINCT values) per group."""
    gcodes, _ = _distinct_group_pairs(codes, values)
    return np.bincount(gcodes, minlength=n_groups).astype(np.int64)


def group_sum_distinct(codes: np.ndarray, n_groups: int, values: np.ndarray) -> np.ndarray:
    """SUM(DISTINCT values) per group."""
    gcodes, rep_idx = _distinct_group_pairs(codes, values)
    vals = values[rep_idx]
    if _int_like(vals.dtype):
        out = np.zeros(n_groups, dtype=np.int64)
        np.add.at(out, gcodes, vals.astype(np.int64, copy=False))
        return out
    return np.bincount(gcodes, weights=vals.astype(np.float64), minlength=n_groups)


# ---------------------------------------------------------------------------
# sorting
# ---------------------------------------------------------------------------


def sort_indices(batch: RowBatch, keys: Sequence[tuple[str, bool]]) -> np.ndarray:
    """Stable multi-key sort supporting DESC on every type.

    Strings are factorized to codes first so DESC is just negation.
    Integer keys stay integer end to end: the old float64 cast rounded
    values beyond 2**53 and mis-ordered large int64 keys, so DESC on
    integers uses bitwise inversion (``~x`` is order-reversing over the
    full int64 range, with no overflow at INT64_MIN the way ``-x`` has).
    This keeps the hot path inside ``np.lexsort``.
    """
    arrays: list[np.ndarray] = []
    for col, asc in reversed(list(keys)):
        arr = batch.col(col)
        if arr.dtype == object:
            # dictionary-encode preserving order; NULL aggregates (None)
            # sort before every string, deterministically in both engines
            vals = arr.tolist()
            if any(x is None for x in vals):
                arr = np.array(["" if x is None else "\x01" + x for x in vals], dtype=object)
            uniq, inv = np.unique(arr, return_inverse=True)
            arr = inv.astype(np.int64)
            arrays.append(arr if asc else -arr)
        elif np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64, copy=False)
            arrays.append(arr if asc else -arr)
        else:
            arr = arr.astype(np.int64, copy=False)
            arrays.append(arr if asc else np.bitwise_not(arr))
    if not arrays:
        return np.arange(batch.length)
    return np.lexsort(arrays)


def merge_sorted(batches: list[RowBatch], schema, keys: Sequence[tuple[str, bool]]) -> RowBatch:
    """k-way merge of individually sorted batches (used by tree merge)."""
    merged = RowBatch.concat(schema, batches)
    if merged.length == 0:
        return merged
    return merged.take(sort_indices(merged, keys))


def top_k(batch: RowBatch, keys: Sequence[tuple[str, bool]], k: int) -> RowBatch:
    """Top-k rows under the sort order (paper: per-worker min-heap).

    Implemented as argpartition + sort of the surviving k — the
    vectorized equivalent of maintaining a bounded heap.
    """
    if batch.length <= k:
        return batch.take(sort_indices(batch, keys))
    idx = sort_indices(batch, keys)[:k]
    return batch.take(idx)
