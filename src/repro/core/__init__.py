"""The distributed execution engine (the paper's core contribution)."""

from .kernels import (
    bloom_filter_codes,
    bloom_filter_test,
    factorize,
    factorize_pair,
    group_aggregate,
    join_match_indices,
    sort_indices,
    top_k,
)
from .reference import execute_logical

__all__ = [
    "execute_logical",
    "factorize",
    "factorize_pair",
    "join_match_indices",
    "group_aggregate",
    "sort_indices",
    "top_k",
    "bloom_filter_codes",
    "bloom_filter_test",
]
