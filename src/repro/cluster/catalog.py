"""Cluster catalog: table metadata replicated across coordinators.

Coordinators store metadata and statistics; HRDBMS replicates both
across *all* coordinators so any coordinator can plan queries, keeping
them in sync with the 2PC-backed metadata transaction path (paper §VI
"Synchronization of Coordinator Metadata" — wired up in
:mod:`repro.txn`). :class:`CatalogEntry` records what Phase 2/3 need:
schema, partitioning scheme, storage format, clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import CatalogError
from ..common.schema import Schema
from ..optimizer.binder import Catalog as BinderCatalog
from ..optimizer.physical import ARBITRARY, REPLICATED, Partitioning, hash_part
from ..storage.partition import (
    HashPartition,
    PartitionScheme,
    RangePartition,
    Replicated,
    RoundRobin,
)


@dataclass
class CatalogEntry:
    name: str
    schema: Schema
    scheme: PartitionScheme
    fmt: str = "column"
    clustering: tuple[str, ...] = ()
    external: bool = False

    def partitioning(self) -> Partitioning:
        if isinstance(self.scheme, Replicated):
            return REPLICATED
        if isinstance(self.scheme, HashPartition):
            return hash_part(self.scheme.columns)
        if isinstance(self.scheme, RangePartition):
            # range partitioning co-locates equal keys just like hash
            return Partitioning("hash", (self.scheme.column,))
        return ARBITRARY


class ClusterCatalog(BinderCatalog):
    """One coordinator's copy of the metadata tables."""

    def __init__(self):
        self.tables: dict[str, CatalogEntry] = {}
        self.version = 0

    def table_schema(self, name: str) -> Schema:
        return self.entry(name).schema

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def add(self, entry: CatalogEntry) -> None:
        if entry.name in self.tables:
            raise CatalogError(f"table {entry.name!r} already exists")
        self.tables[entry.name] = entry
        self.version += 1

    def drop(self, name: str) -> None:
        if name not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        del self.tables[name]
        self.version += 1

    def snapshot(self) -> dict:
        return {"tables": dict(self.tables), "version": self.version}

    def restore(self, snap: dict) -> None:
        self.tables = dict(snap["tables"])
        self.version = snap["version"]


def scheme_from_clause(
    partition: Optional[tuple[str, tuple[str, ...]]], n_workers: int
) -> PartitionScheme:
    """CREATE TABLE's PARTITION BY clause -> a concrete scheme."""
    if partition is None:
        return RoundRobin()
    kind, cols = partition
    if kind == "hash":
        return HashPartition(tuple(cols))
    if kind == "replicated":
        return Replicated()
    raise CatalogError(f"unsupported partition kind {kind!r}")
