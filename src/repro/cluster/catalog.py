"""Cluster catalog: table metadata replicated across coordinators.

Coordinators store metadata and statistics; HRDBMS replicates both
across *all* coordinators so any coordinator can plan queries, keeping
them in sync with the 2PC-backed metadata transaction path (paper §VI
"Synchronization of Coordinator Metadata" — wired up in
:mod:`repro.txn`). :class:`CatalogEntry` records what Phase 2/3 need:
schema, partitioning scheme, storage format, clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import CatalogError
from ..common.schema import Schema
from ..optimizer.binder import Catalog as BinderCatalog
from ..optimizer.physical import ARBITRARY, REPLICATED, SINGLETON, Partitioning, hash_part
from ..storage.partition import (
    HashPartition,
    PartitionScheme,
    RangePartition,
    Replicated,
    RoundRobin,
)


@dataclass(frozen=True)
class PlacementMap:
    """One epoch of the cluster's data placement.

    The placement map is versioned: every membership change (scale-out,
    drain, re-replication) re-shards fragments and publishes a new epoch.
    In-flight queries finish against the epoch they planned under (their
    executor clone pins the epoch's worker set and storages); new queries
    plan and execute against the current epoch. ``draining`` lists
    workers that are leaving but still hold old-epoch fragments.
    """

    epoch: int = 0
    workers: tuple[int, ...] = ()
    draining: tuple[int, ...] = ()


@dataclass
class CatalogEntry:
    name: str
    schema: Schema
    scheme: PartitionScheme
    fmt: str = "column"
    clustering: tuple[str, ...] = ()
    external: bool = False
    #: virtual (sys.*) relation: no storage, materialized on demand at
    #: the coordinator by an executor-side provider
    virtual: bool = False

    def partitioning(self) -> Partitioning:
        if self.virtual:
            # non-fragmented: the whole relation exists at the
            # coordinator — this is what routes the planner to a
            # sysscan instead of a worker scan
            return SINGLETON
        if isinstance(self.scheme, Replicated):
            return REPLICATED
        if isinstance(self.scheme, HashPartition):
            return hash_part(self.scheme.columns)
        if isinstance(self.scheme, RangePartition):
            # range partitioning co-locates equal keys just like hash
            return Partitioning("hash", (self.scheme.column,))
        return ARBITRARY


class ClusterCatalog(BinderCatalog):
    """One coordinator's copy of the metadata tables."""

    def __init__(self):
        self.tables: dict[str, CatalogEntry] = {}
        #: virtual (sys.*) relations, kept out of ``tables`` so
        #: placement/rebalance/DML paths that iterate stored tables
        #: never see them
        self.virtual: dict[str, CatalogEntry] = {}
        self.version = 0
        #: current placement epoch (membership + fragment assignment)
        self.placement = PlacementMap()
        #: every epoch ever published (epoch -> worker set), so in-flight
        #: queries' pinned epochs stay explicable after the fact
        self.placement_history: dict[int, PlacementMap] = {0: self.placement}

    def table_schema(self, name: str) -> Schema:
        return self.entry(name).schema

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self.tables[name]
        except KeyError:
            pass
        try:
            return self.virtual[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables or name in self.virtual

    def add(self, entry: CatalogEntry) -> None:
        if entry.name in self.tables or entry.name in self.virtual:
            raise CatalogError(f"table {entry.name!r} already exists")
        self.tables[entry.name] = entry
        self.version += 1

    def add_virtual(self, entry: CatalogEntry) -> None:
        """Register a virtual relation. Does not bump ``version``:
        virtual schemas are fixed at wiring time and must not
        invalidate cached plans."""
        if entry.name in self.tables:
            raise CatalogError(f"table {entry.name!r} already exists")
        self.virtual[entry.name] = entry

    def drop(self, name: str) -> None:
        if name not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        del self.tables[name]
        self.version += 1

    @property
    def placement_epoch(self) -> int:
        return self.placement.epoch

    def set_placement(
        self, workers: tuple[int, ...], draining: tuple[int, ...] = ()
    ) -> PlacementMap:
        """Publish the next placement epoch.

        Bumps ``version`` too: plan-cache keys carry the catalog version,
        so every cached plan from the old epoch is invalidated the moment
        the new placement lands.
        """
        pm = PlacementMap(
            epoch=self.placement.epoch + 1,
            workers=tuple(workers),
            draining=tuple(draining),
        )
        self.placement = pm
        self.placement_history[pm.epoch] = pm
        self.version += 1
        return pm

    def snapshot(self) -> dict:
        return {
            "tables": dict(self.tables),
            "virtual": dict(self.virtual),
            "version": self.version,
            "placement": self.placement,
            "placement_history": dict(self.placement_history),
        }

    def restore(self, snap: dict) -> None:
        self.tables = dict(snap["tables"])
        self.virtual = dict(snap.get("virtual", {}))
        self.version = snap["version"]
        self.placement = snap.get("placement", PlacementMap())
        self.placement_history = dict(
            snap.get("placement_history", {self.placement.epoch: self.placement})
        )


def scheme_from_clause(
    partition: Optional[tuple[str, tuple[str, ...]]], n_workers: int
) -> PartitionScheme:
    """CREATE TABLE's PARTITION BY clause -> a concrete scheme."""
    if partition is None:
        return RoundRobin()
    kind, cols = partition
    if kind == "hash":
        return HashPartition(tuple(cols))
    if kind == "replicated":
        return Replicated()
    raise CatalogError(f"unsupported partition kind {kind!r}")
