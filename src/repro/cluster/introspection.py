"""Introspection as data: the ``sys.*`` virtual system tables.

The cluster's whole telemetry surface — query lifecycle, per-operator
actuals, metrics (live and historical), worker health, fragment scan
counters, the plan cache, shared scans, and the flight recorder — is
exposed as *relations*. Each ``sys.*`` table is a
:class:`~repro.cluster.catalog.CatalogEntry` marked virtual
(non-fragmented, SINGLETON placement), whose provider materializes a
RowBatch from live state when the executor reaches its ``sysscan``
leaf. Everything above the leaf is the ordinary engine: the binder
resolves columns, the optimizer plans filters/joins/aggregates, and

    SELECT locus, qerror FROM sys.query_operators
    WHERE qid = 7 ORDER BY qerror DESC

runs through the exact parse→optimize→execute path a TPC-H query does.

Providers snapshot under the owning subsystem's lock and sort rows by
their natural key, so two materializations of quiescent state are
byte-identical — the property the chaos tests pin (``sys.events``
must match the recorder's JSON dump byte-for-byte).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..common.batch import RowBatch
from ..common.dtypes import DataType
from ..common.schema import Schema
from ..optimizer.feedback import physical_locus, qerror
from ..telemetry.metrics import _fmt_labels

I64 = DataType.INT64
F64 = DataType.FLOAT64
STR = DataType.STRING

#: name -> relation schema for every sys.* table (column names avoid
#: SQL keywords: ``table_name`` not ``table``, ``rows`` not ``row``)
SYS_SCHEMAS: dict[str, Schema] = {
    "sys.queries": Schema.of(
        ("qid", I64), ("sql", STR), ("status", STR), ("coordinator", I64),
        ("epoch", I64), ("duration_s", F64), ("admission_wait_s", F64),
        ("busy_s", F64), ("rows", I64), ("net_bytes", I64),
        ("restarts", I64), ("replans", I64), ("trace_retained", I64),
        ("error", STR),
    ),
    "sys.query_operators": Schema.of(
        ("qid", I64), ("op_id", I64), ("op", STR), ("locus", STR),
        ("site", STR), ("est_rows", F64), ("rows", I64), ("qerror", F64),
        ("time_s", F64),
    ),
    "sys.metrics": Schema.of(
        ("name", STR), ("kind", STR), ("labels", STR), ("value", F64),
    ),
    "sys.metrics_history": Schema.of(
        ("sample_id", I64), ("tick", I64), ("name", STR), ("labels", STR),
        ("value", F64),
    ),
    "sys.workers": Schema.of(
        ("worker_id", I64), ("state", STR), ("draining", I64),
        ("failures", I64), ("mem_used", I64), ("mem_peak", I64),
        ("spilled_bytes", I64), ("effective_dop", I64), ("tables", I64),
        ("in_placement", I64),
    ),
    "sys.fragments": Schema.of(
        ("table_name", STR), ("worker", I64), ("fragment", I64),
        ("rows", I64), ("sets", I64), ("pages_read", I64),
        ("pages_skipped", I64), ("sets_skipped", I64), ("sets_pushed", I64),
        ("rows_out", I64), ("shared_attaches", I64),
    ),
    "sys.plan_cache": Schema.of(
        ("sql", STR), ("mode", STR), ("coordinator", I64),
        ("catalog_version", I64), ("stats_version", I64),
    ),
    "sys.shared_scans": Schema.of(
        ("table_name", STR), ("worker", I64), ("fragment", I64),
        ("attaches", I64), ("active", I64), ("followers", I64),
        ("published_sets", I64), ("progress", I64), ("done", I64),
    ),
    "sys.events": Schema.of(
        ("shard", I64), ("seq", I64), ("tick", I64), ("ts", F64),
        ("kind", STR), ("qid", I64), ("node", I64), ("detail", STR),
    ),
}


def _batch(schema: Schema, rows: list[tuple]) -> RowBatch:
    """Column-major RowBatch from row tuples aligned with ``schema``."""
    cols = {}
    for i, c in enumerate(schema):
        vals = [r[i] for r in rows]
        if c.dtype == STR:
            arr = np.empty(len(vals), dtype=object)
            arr[:] = ["" if v is None else str(v) for v in vals]
        else:
            arr = np.asarray(vals, dtype=c.dtype.numpy_dtype)
        cols[c.name] = arr
    return RowBatch(schema, cols)


# ---------------------------------------------------------------------------
# query registry (sys.queries / sys.query_operators)
# ---------------------------------------------------------------------------


@dataclass
class QueryRecord:
    """Lifecycle summary of one SELECT, retained after completion."""

    qid: int
    sql: str
    status: str = "running"  # running | done | error
    coordinator: int = 0
    epoch: int = 0
    duration_s: float = 0.0
    admission_wait_s: float = 0.0
    busy_s: float = 0.0
    rows: int = 0
    net_bytes: int = 0
    restarts: int = 0
    replans: int = 0
    error: str = ""
    #: heavy per-operator references; dropped (summary row kept) when
    #: the trace-retention window evicts this query
    trace_retained: bool = True
    physical: object = None
    op_rows: dict = field(default_factory=dict)
    profiles: dict | None = None


class QueryRegistry:
    """Bounded, thread-safe per-query lifecycle store behind
    ``sys.queries`` and ``sys.query_operators``."""

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, capacity)
        self._records: OrderedDict[int, QueryRecord] = OrderedDict()
        self._mu = threading.Lock()

    def start(self, qid: int, sql: str, coordinator: int) -> QueryRecord:
        rec = QueryRecord(qid=qid, sql=sql, coordinator=coordinator)
        with self._mu:
            self._records[qid] = rec
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
        return rec

    def get(self, qid: int) -> QueryRecord | None:
        with self._mu:
            return self._records.get(qid)

    def note_admission(self, qid: int, wait_s: float) -> None:
        rec = self.get(qid)
        if rec is not None:
            rec.admission_wait_s = wait_s

    def note_replan(self, qid: int) -> None:
        rec = self.get(qid)
        if rec is not None:
            rec.replans += 1

    def finish(self, qid: int, result, duration_s: float) -> None:
        rec = self.get(qid)
        if rec is None:
            return
        stats = result.stats
        rec.status = "done"
        rec.epoch = result.epoch
        rec.duration_s = duration_s
        rec.busy_s = sum(stats.site_busy_s.values()) + stats.coord_busy_s
        rec.rows = stats.rows_returned
        rec.net_bytes = stats.network_bytes
        rec.restarts = stats.restarts
        rec.physical = result.physical
        rec.op_rows = dict(result.op_rows or {})
        rec.profiles = result.profiles

    def fail(self, qid: int, error: BaseException, duration_s: float) -> None:
        rec = self.get(qid)
        if rec is None:
            return
        rec.status = "error"
        rec.duration_s = duration_s
        rec.error = f"{type(error).__name__}: {error}"

    def evict_trace(self, qid: int) -> None:
        """Trace-retention eviction: keep the summary row, drop the
        heavy per-operator references so nothing dangles."""
        rec = self.get(qid)
        if rec is None:
            return
        rec.trace_retained = False
        rec.physical = None
        rec.op_rows = {}
        rec.profiles = None

    def records(self) -> list[QueryRecord]:
        with self._mu:
            return list(self._records.values())


# ---------------------------------------------------------------------------
# providers
# ---------------------------------------------------------------------------


def build_providers(db) -> dict:
    """Provider closures for every sys.* table over live Database state.

    Returned mapping: table name -> () -> RowBatch. Shared by reference
    with every per-query executor clone; each call snapshots fresh."""

    def queries() -> RowBatch:
        rows = [
            (
                r.qid, r.sql, r.status, r.coordinator, r.epoch, r.duration_s,
                r.admission_wait_s, r.busy_s, r.rows, r.net_bytes, r.restarts,
                r.replans, int(r.trace_retained), r.error,
            )
            for r in db.query_log.records()
        ]
        rows.sort(key=lambda r: r[0])
        return _batch(SYS_SCHEMAS["sys.queries"], rows)

    def query_operators() -> RowBatch:
        rows = []
        for rec in db.query_log.records():
            if rec.physical is None:
                continue
            profiles = rec.profiles or {}
            for op in rec.physical.walk():
                actual = rec.op_rows.get(op.id)
                if actual is None:
                    continue
                est = float(op.attrs.get("est_rows", 0.0))
                locus = physical_locus(op)
                prof = profiles.get(op.id)
                rows.append(
                    (
                        rec.qid, op.id, op.op,
                        "" if locus is None else f"{locus[0]}:{sorted(locus[1])}",
                        op.site, est, int(actual), qerror(est, actual),
                        prof.time_s if prof is not None else 0.0,
                    )
                )
        rows.sort(key=lambda r: (r[0], r[1]))
        return _batch(SYS_SCHEMAS["sys.query_operators"], rows)

    def metrics() -> RowBatch:
        rows = []
        for name, metric in db.metrics.snapshot().items():
            kind = metric["type"]
            for sample in metric["samples"]:
                labels = _fmt_labels(sample["labels"])
                if "buckets" in sample:
                    # histograms flatten to their _count/_sum series
                    rows.append((name + "_count", kind, labels, float(sample["count"])))
                    rows.append((name + "_sum", kind, labels, float(sample["sum"])))
                else:
                    rows.append((name, kind, labels, float(sample["value"])))
        rows.sort(key=lambda r: (r[0], r[2]))
        return _batch(SYS_SCHEMAS["sys.metrics"], rows)

    def metrics_history() -> RowBatch:
        rows = [
            (sid, tick, name, labels, value)
            for (sid, tick, name, labels, value) in (
                db.sampler.rows() if db.sampler is not None else []
            )
        ]
        return _batch(SYS_SCHEMAS["sys.metrics_history"], rows)

    def workers() -> RowBatch:
        health = db._executor.health
        placement = set(db.worker_ids)
        rows = []
        for w, wk in sorted(db.workers.items()):
            gov = wk.governor
            rows.append(
                (
                    w, health.state(w), int(health.is_draining(w)),
                    health.failures(w), gov.used, gov.peak, gov.spilled_bytes,
                    wk.monitor.effective_dop(), len(wk.storage),
                    int(w in placement),
                )
            )
        return _batch(SYS_SCHEMAS["sys.workers"], rows)

    def fragments() -> RowBatch:
        rows = []
        for w, wk in sorted(db.workers.items()):
            for tname in sorted(wk.storage):
                ts = wk.storage[tname]
                for i, frag in enumerate(ts.fragments):
                    with frag._cum_lock:
                        st = frag.cum_stats
                        skipped = (
                            st.sets_skipped_cache + st.sets_skipped_minmax
                            + st.sets_skipped_index + st.sets_skipped_encoded
                            + st.sets_skipped_bloom
                        )
                        rows.append(
                            (
                                tname, w, i, frag.row_count, len(frag.sets),
                                st.pages_read, st.pages_skipped, skipped,
                                st.sets_pushed, st.rows_out, st.shared_attaches,
                            )
                        )
        return _batch(SYS_SCHEMAS["sys.fragments"], rows)

    def plan_cache() -> RowBatch:
        rows = sorted(db.plan_cache.entries())
        return _batch(SYS_SCHEMAS["sys.plan_cache"], rows)

    def shared_scans() -> RowBatch:
        rows = []
        for w, wk in sorted(db.workers.items()):
            for tname in sorted(wk.storage):
                ts = wk.storage[tname]
                for i, frag in enumerate(ts.fragments):
                    ss = frag.shared
                    with ss.lock:
                        p = ss.current
                        if p is None:
                            rows.append((tname, w, i, ss.attaches, 0, 0, 0, -1, 0))
                        else:
                            with p.cond:
                                rows.append(
                                    (
                                        tname, w, i, ss.attaches, 1, p.followers,
                                        len(p.published), p.progress, int(p.done),
                                    )
                                )
        return _batch(SYS_SCHEMAS["sys.shared_scans"], rows)

    def events() -> RowBatch:
        evs = db.recorder.events() if db.recorder is not None else []
        rows = [
            (e.shard, e.seq, e.tick, e.ts, e.kind, e.qid, e.node, e.detail)
            for e in evs
        ]
        return _batch(SYS_SCHEMAS["sys.events"], rows)

    return {
        "sys.queries": queries,
        "sys.query_operators": query_operators,
        "sys.metrics": metrics,
        "sys.metrics_history": metrics_history,
        "sys.workers": workers,
        "sys.fragments": fragments,
        "sys.plan_cache": plan_cache,
        "sys.shared_scans": shared_scans,
        "sys.events": events,
    }
