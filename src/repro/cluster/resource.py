"""Three-level resource management (paper §I-A).

HRDBMS deliberately manages its own resources instead of delegating to
YARN/Mesos, decentralizing decisions:

1. **Cluster level** — the optimizer balances load and communication
   across workers (in this codebase: the Phase-3 planner's placement and
   exchange decisions in :mod:`repro.optimizer.dataflow`).
2. **Worker level** — each worker monitors its own memory pressure and
   reduces the degree of parallelism of query operators when resources
   are scarce (:class:`ResourceMonitor` below).
3. **Operator level** — operators spill to disk to bound memory
   (:mod:`repro.core.spill`).

The decentralization matters for scalability: coordinators never make
per-worker micro-decisions (paper: "avoids overloading coordinators with
decisions that can be better made locally").
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..common.errors import ReproError
from ..core.spill import MemoryGovernor


class AdmissionTimeout(ReproError):
    """A query waited longer than ``admission_timeout`` for admission."""


@dataclass
class ResourceMonitor:
    """Worker-local DOP control (resource-management level 2).

    The base degree of parallelism equals the disk count (the paper's
    scan rule); as the memory governor's utilization climbs, operator
    parallelism is scaled back so concurrent operator state shrinks,
    down to 1 under severe pressure.
    """

    governor: MemoryGovernor
    base_dop: int
    #: start throttling above this utilization
    soft_threshold: float = 0.6
    #: run single-threaded above this utilization
    hard_threshold: float = 0.95
    #: live/baseline worker counts (elastic membership). When workers
    #: drain, the survivors absorb their load, so each one scales its
    #: per-operator DOP back to keep the aggregate morsel-thread
    #: pressure bounded; scale-out restores (never exceeds) ``base_dop``.
    live_workers: int = 0
    baseline_workers: int = 0

    @property
    def utilization(self) -> float:
        if self.governor.budget <= 0:
            return 1.0
        return min(self.governor.used / self.governor.budget, 1.5)

    def set_membership(self, live: int, baseline: int) -> None:
        self.live_workers = max(0, live)
        self.baseline_workers = max(0, baseline)

    def effective_dop(self) -> int:
        u = self.utilization
        if u <= self.soft_threshold:
            dop = self.base_dop
        elif u >= self.hard_threshold:
            dop = 1
        else:
            # linear scale-back between the thresholds
            span = self.hard_threshold - self.soft_threshold
            frac = 1.0 - (u - self.soft_threshold) / span
            dop = max(1, round(1 + frac * (self.base_dop - 1)))
        if 0 < self.live_workers < self.baseline_workers:
            dop = max(1, round(dop * self.live_workers / self.baseline_workers))
        return dop

    def should_throttle(self) -> bool:
        return self.effective_dop() < self.base_dop


class AdmissionController:
    """Coordinator-side query admission (resource-management level 1).

    Gates query starts against the cluster's aggregate memory budget so
    concurrency never oversubscribes what the per-worker
    :class:`MemoryGovernor` instances can hold: each query takes a
    memory *grant* at admission and returns it at completion, and at
    most ``max_concurrent`` queries run at once. Waiters queue FIFO —
    a ticket enters the deque and a queued query is admitted only when
    it reaches the head, preventing small queries from starving a large
    one (no sidestepping the queue just because its grant fits).

    Usage::

        with controller.admit(grant):
            ...run the query...
    """

    def __init__(
        self,
        total_budget: int,
        max_concurrent: int,
        default_grant: int = 0,
        timeout: float = 60.0,
    ):
        self.total_budget = max(1, total_budget)
        self.max_concurrent = max(1, max_concurrent)
        #: grant used when a query does not size itself (0 = even split);
        #: auto grants are recomputed when the budget resizes
        self._auto_grant = default_grant <= 0
        self.default_grant = default_grant if default_grant > 0 else max(
            1, self.total_budget // self.max_concurrent
        )
        self.timeout = timeout
        self._cv = threading.Condition()
        self._queue: deque[int] = deque()
        self._ticket = 0
        self.active = 0
        self.granted = 0
        # observability
        self.admitted_total = 0
        self.waited_total = 0
        self.peak_active = 0
        self.peak_granted = 0
        #: wall seconds queries spent queued before their grant
        self.grant_wait_s = 0.0
        #: admissions that gave up after ``timeout`` seconds
        self.timeouts = 0
        #: membership-driven budget changes applied (elasticity)
        self.resizes = 0

    def _may_admit(self, ticket: int, grant: int) -> bool:
        return (
            self._queue[0] == ticket
            and self.active < self.max_concurrent
            and self.granted + grant <= self.total_budget
        )

    def admit(self, grant: int = 0) -> "_Admission":
        """Block until admitted; returns a context manager releasing the
        grant on exit. Raises :class:`AdmissionTimeout` after
        ``timeout`` seconds of queueing."""
        grant = grant if grant > 0 else self.default_grant
        grant = min(grant, self.total_budget)  # a huge query still runs (alone)
        with self._cv:
            self._ticket += 1
            ticket = self._ticket
            self._queue.append(ticket)
            waited = False
            t0 = time.monotonic()
            deadline = t0 + self.timeout
            while not self._may_admit(ticket, grant):
                waited = True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._queue.remove(ticket)
                    self.timeouts += 1
                    self.grant_wait_s += time.monotonic() - t0
                    self._cv.notify_all()
                    raise AdmissionTimeout(
                        f"query not admitted within {self.timeout}s "
                        f"(active={self.active}, granted={self.granted}B)"
                    )
                self._cv.wait(timeout=remaining)
            self._queue.popleft()
            self.active += 1
            self.granted += grant
            self.admitted_total += 1
            if waited:
                self.waited_total += 1
                self.grant_wait_s += time.monotonic() - t0
            self.peak_active = max(self.peak_active, self.active)
            self.peak_granted = max(self.peak_granted, self.granted)
            self._cv.notify_all()
            return _Admission(self, grant)

    def _release(self, grant: int) -> None:
        with self._cv:
            self.active -= 1
            self.granted -= grant
            self._cv.notify_all()

    def resize(self, total_budget: int) -> None:
        """Track live membership: the admission budget follows the
        aggregate memory of the *current* worker set, so grants shrink
        when workers drain and grow on scale-out. Already-held grants
        are unaffected (shrinking only gates new admissions); queued
        waiters re-check against the new budget immediately."""
        with self._cv:
            self.total_budget = max(1, total_budget)
            if self._auto_grant:
                self.default_grant = max(1, self.total_budget // self.max_concurrent)
            self.resizes += 1
            self._cv.notify_all()

    @property
    def queue_depth(self) -> int:
        """Queries currently queued awaiting admission."""
        return len(self._queue)

    def stats(self) -> dict:
        with self._cv:
            return {
                "admitted": self.admitted_total,
                "waited": self.waited_total,
                "queue_depth": len(self._queue),
                "grant_wait_s": self.grant_wait_s,
                "timeouts": self.timeouts,
                "peak_active": self.peak_active,
                "peak_granted_bytes": self.peak_granted,
                "max_concurrent": self.max_concurrent,
                "total_budget_bytes": self.total_budget,
                "resizes": self.resizes,
            }


class _Admission:
    """Context manager holding one admitted query's memory grant."""

    def __init__(self, controller: AdmissionController, grant: int):
        self.controller = controller
        self.grant = grant
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.controller._release(self.grant)
