"""Three-level resource management (paper §I-A).

HRDBMS deliberately manages its own resources instead of delegating to
YARN/Mesos, decentralizing decisions:

1. **Cluster level** — the optimizer balances load and communication
   across workers (in this codebase: the Phase-3 planner's placement and
   exchange decisions in :mod:`repro.optimizer.dataflow`).
2. **Worker level** — each worker monitors its own memory pressure and
   reduces the degree of parallelism of query operators when resources
   are scarce (:class:`ResourceMonitor` below).
3. **Operator level** — operators spill to disk to bound memory
   (:mod:`repro.core.spill`).

The decentralization matters for scalability: coordinators never make
per-worker micro-decisions (paper: "avoids overloading coordinators with
decisions that can be better made locally").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spill import MemoryGovernor


@dataclass
class ResourceMonitor:
    """Worker-local DOP control (resource-management level 2).

    The base degree of parallelism equals the disk count (the paper's
    scan rule); as the memory governor's utilization climbs, operator
    parallelism is scaled back so concurrent operator state shrinks,
    down to 1 under severe pressure.
    """

    governor: MemoryGovernor
    base_dop: int
    #: start throttling above this utilization
    soft_threshold: float = 0.6
    #: run single-threaded above this utilization
    hard_threshold: float = 0.95

    @property
    def utilization(self) -> float:
        if self.governor.budget <= 0:
            return 1.0
        return min(self.governor.used / self.governor.budget, 1.5)

    def effective_dop(self) -> int:
        u = self.utilization
        if u <= self.soft_threshold:
            return self.base_dop
        if u >= self.hard_threshold:
            return 1
        # linear scale-back between the thresholds
        span = self.hard_threshold - self.soft_threshold
        frac = 1.0 - (u - self.soft_threshold) / span
        return max(1, round(1 + frac * (self.base_dop - 1)))

    def should_throttle(self) -> bool:
        return self.effective_dop() < self.base_dop
