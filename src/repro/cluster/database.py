"""The ``Database`` façade — the library's primary public API.

Builds a simulated HRDBMS cluster (coordinators + workers + network),
owns the catalog/statistics, and drives the full query pipeline:

    SQL text -> parse -> bind (decorrelate) -> Phase 1 global
    optimization -> Phase 3 dataflow optimization -> distributed
    execution over the simulated cluster -> result at the coordinator.

Usage::

    db = Database(ClusterConfig(n_workers=4))
    db.create_table("t", Schema.of(("a", DataType.INT64)), partition=("hash", ("a",)))
    db.load("t", batch)
    result = db.sql("select sum(a) from t")
    print(result.rows())
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..common.batch import RowBatch
from ..common.config import ClusterConfig
from ..common.errors import CatalogError, NetworkError, PlanError, WorkerFailureError
from ..common.schema import Schema
from ..core.executor import DistributedExecutor, ExecStats, WorkerRuntime
from ..core.pipeline import MorselScheduler
from ..core.reference import execute_logical
from ..core.spill import MemoryGovernor
from ..network.simnet import SimNetwork
from ..network.topology import BinomialGraphTopology, TreeTopology
from ..optimizer.binder import Binder
from ..optimizer.dataflow import DataflowPlanner, convert_naive
from ..optimizer.derive import StatsDeriver
from ..optimizer.feedback import FeedbackStore, actual_overrides, score_plan
from ..optimizer.logical import LogicalPlan
from ..optimizer.physical import PhysOp
from ..optimizer.rewrite import optimize_logical, push_filters
from ..optimizer.stats import StatsProvider, TableStats
from ..sql import parse
from ..sql.ast import (
    CreateTable,
    DeleteStmt,
    DropTable,
    InsertValues,
    Literal,
    SelectStmt,
    UpdateStmt,
)
from ..storage.buffer import BufferManager
from ..storage.external import ExternalTableType
from ..storage.partition import Replicated, disk_of_rows
from ..storage.table import TableStorage
from ..telemetry import (
    FlightRecorder,
    MetricsRegistry,
    MetricsSampler,
    SlowQuery,
    Tracer,
    render_analyze,
)
from ..txn.manager import TransactionSystem
from ..util.fs import FileSystem, LocalFS, MemFS
from .catalog import CatalogEntry, ClusterCatalog, PlacementMap, scheme_from_clause
from .introspection import SYS_SCHEMAS, QueryRegistry, build_providers
from .plancache import PlanCache
from .resource import AdmissionController, AdmissionTimeout

COORD_BASE = 10_000


@functools.lru_cache(maxsize=512)
def _parse_cached(text: str):
    """Statement ASTs are frozen dataclasses and parsing is a pure
    function of the text, so repeat statements (the warm path the plan
    cache serves) skip the lexer entirely."""
    return parse(text)


@dataclass
class QueryResult:
    batch: RowBatch
    stats: ExecStats
    logical: LogicalPlan | None = None
    physical: PhysOp | None = None
    rowcount: int = 0  # DML-affected rows
    #: per-operator actuals (physical-op id -> OpProfile) when the query
    #: ran profiled (EXPLAIN ANALYZE); None otherwise
    profiles: dict | None = None
    #: query id (tag namespace ``q<id>|``, trace registry key)
    qid: int = 0
    #: placement epoch the query executed under (elastic membership:
    #: in-flight queries finish against the epoch they planned under)
    epoch: int = 0
    #: per-operator output rows (physical-op id -> rows), recorded on
    #: every execution — feeds the Q-error adaptive-replanning loop
    op_rows: dict | None = None

    def rows(self) -> list[tuple]:
        return self.batch.rows()

    @property
    def columns(self) -> list[str]:
        return self.batch.schema.names()


@dataclass
class RebalanceReport:
    """What one membership/placement change did (scale-out, drain, or
    re-replication). Returned by the elastic APIs and retained in
    ``Database.rebalances`` for observability."""

    kind: str  # "add" | "drain" | "replicate"
    workers: tuple[int, ...]  # placement after the change
    epoch: int = 0  # placement epoch published by the change
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    #: fragment bytes that actually crossed the wire ("rebalance|" streams)
    bytes_moved: int = 0
    #: fragment streams delivered
    streams: int = 0
    #: stream sends retried after a chaos fault
    retries: int = 0
    #: streams that fell back to the coordinator-mediated route
    reroutes: int = 0
    #: tables whose fragments moved (re-sharded or re-replicated)
    tables_moved: int = 0
    duration_s: float = 0.0


class Worker:
    """A worker node: local storage, buffer pool, memory governor."""

    def __init__(self, worker_id: int, config: ClusterConfig, fs: FileSystem):
        self.worker_id = worker_id
        self.config = config
        self.fs = fs
        self.bufmgr = BufferManager(config.buffer_stripes, config.pages_per_pool)
        self.governor = MemoryGovernor(config.memory_per_node)
        self.storage: dict[str, TableStorage] = {}
        self.external: dict[str, object] = {}
        # worker-level resource management (paper's level 2): DOP follows
        # local memory pressure
        from .resource import ResourceMonitor

        self.monitor = ResourceMonitor(self.governor, config.disks_per_node)

    def create_table(self, entry: CatalogEntry) -> TableStorage:
        ts = TableStorage(
            self.fs,
            self.bufmgr,
            entry.name,
            entry.schema,
            fmt=entry.fmt,
            n_disks=self.config.disks_per_node,
            page_size=self.config.page_size,
            codec=self.config.compression,
            clustering=entry.clustering,
        )
        self.storage[entry.name] = ts
        return ts

    def drop_table(self, name: str) -> None:
        self.storage.pop(name, None)

    def runtime(self) -> WorkerRuntime:
        return WorkerRuntime(
            worker_id=self.worker_id,
            fs=self.fs,
            storage=self.storage,
            governor=self.governor,
            external=self.external,
            effective_dop=self.config.disks_per_node,
            dop_source=self.monitor.effective_dop,
        )


class Coordinator:
    """A coordinator node: catalog replica + statistics + planner."""

    def __init__(self, coord_id: int):
        self.coord_id = coord_id
        self.catalog = ClusterCatalog()
        self.stats = StatsProvider()


class Session:
    """One client connection, pinned to a coordinator.

    The paper's coordinators replicate metadata and load-balance client
    connections; :meth:`Database.session` hands sessions out round-robin
    across coordinators. Each call plans on its coordinator's catalog
    replica and executes through the shared admission-controlled
    pipeline, so many threads may each hold a session and issue SQL
    simultaneously.
    """

    def __init__(self, db: "Database", coordinator: int):
        self.db = db
        self.coordinator = coordinator

    def sql(self, text: str, naive_dataflow: bool = False, txn=None) -> QueryResult:
        return self.db.sql(
            text, naive_dataflow=naive_dataflow, coordinator=self.coordinator, txn=txn
        )


class Database:
    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        # storage-layer knobs live in module state (the caches and the
        # shared-pass retention are process-wide, like the page formats)
        from ..storage import col_page, shared_scan

        col_page.set_decoded_cache_limit(self.config.decoded_cache_mb * 1024 * 1024)
        shared_scan.MAX_PUBLISHED_SETS = self.config.shared_scan_max_sets
        n = self.config.n_workers
        self.worker_ids = list(range(n))
        self.coord_ids = [COORD_BASE + i for i in range(self.config.n_coordinators)]
        self.net = SimNetwork(self.worker_ids + self.coord_ids)
        self._fs_root: FileSystem | None = None
        self.workers: dict[int, Worker] = {
            w: Worker(w, self.config, self._make_fs(w)) for w in self.worker_ids
        }
        self.coordinators = [Coordinator(c) for c in self.coord_ids]
        # epoch 0 of the versioned placement map (elastic membership)
        for c in self.coordinators:
            c.catalog.placement = PlacementMap(0, tuple(self.worker_ids))
            c.catalog.placement_history = {0: c.catalog.placement}
        self.txn_system = TransactionSystem(self)
        self._executor = DistributedExecutor(
            {w: wk.runtime() for w, wk in self.workers.items()},
            self.coord_ids[0],
            self.net,
            self.config,
        )
        # -- concurrent serving layer --------------------------------------
        #: shared morsel pool multiplexed across concurrent queries
        self.scheduler = MorselScheduler(self.config.morsel_threads)
        self._executor.scheduler = self.scheduler
        #: coordinator admission gate against the aggregate memory budget
        self.admission = AdmissionController(
            total_budget=self.config.memory_per_node * self.config.n_workers,
            max_concurrent=self.config.max_concurrent_queries,
            default_grant=self.config.query_memory_grant,
            timeout=self.config.admission_timeout,
        )
        #: optimized-plan cache (normalized SQL + catalog/stats versions)
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        #: per-statement Q-error feedback records, keyed like the plan
        #: cache (optimizer.feedback; drives adaptive re-planning)
        self.feedback = FeedbackStore()
        #: planning mutates global fresh-name state; one planner at a time
        self._plan_lock = threading.Lock()
        #: DDL/DML writers serialize against each other
        self._write_lock = threading.RLock()
        self._qid = itertools.count(1)
        self._session_rr = itertools.count()
        self._submit_pool = None
        self._submit_mu = threading.Lock()
        # -- telemetry (DESIGN.md §9) ---------------------------------------
        #: query-lifecycle tracer; None when tracing is off (a positive
        #: slow-query threshold implies tracing — the log needs the spans)
        self.tracer: Tracer | None = None
        if self.config.tracing or self.config.slow_query_threshold_s > 0:
            self.tracer = Tracer(retention=self.config.trace_retention)
            self._executor.tracer = self.tracer
            self.net.tracer = self.tracer
        #: cluster metrics registry (Prometheus-renderable)
        self.metrics = MetricsRegistry()
        self._m_query_hist = self.metrics.histogram(
            "repro_query_duration_seconds", "end-to-end SELECT latency"
        )
        self._m_query_total = self.metrics.counter(
            "repro_query_total", "SELECT queries executed"
        )
        self._m_query_slow = self.metrics.counter(
            "repro_query_slow_total", "queries captured by the slow-query log"
        )
        #: every membership/placement change applied, in order
        self.rebalances: list[RebalanceReport] = []
        self._register_collectors()
        #: slow-query log: queries over ``slow_query_threshold_s`` (or
        #: restarted under chaos), traces attached
        self.slow_queries: list[SlowQuery] = []
        self._slow_mu = threading.Lock()
        # -- introspection (DESIGN.md §14) ----------------------------------
        #: always-on cluster flight recorder (sys.events, `repro events`)
        self.recorder: FlightRecorder | None = None
        if self.config.flight_recorder:
            self.recorder = FlightRecorder(
                self.config.recorder_shards, self.config.recorder_events
            )
        #: metrics time-series sampler (sys.metrics_history)
        self.sampler: MetricsSampler | None = None
        if self.config.metrics_history_window > 0:
            self.sampler = MetricsSampler(
                self.metrics,
                window=self.config.metrics_history_window,
                tick_every=self.config.metrics_sample_ticks,
                wall_every_s=self.config.metrics_sample_s,
            )
        #: per-query lifecycle summaries (sys.queries/sys.query_operators)
        self.query_log = QueryRegistry(self.config.query_history)
        if self.tracer is not None:
            # retention eviction keeps the summary row, drops heavy refs
            self.tracer.on_evict = self.query_log.evict_trace
        self._executor.recorder = self.recorder
        self._executor.sys_tables = build_providers(self)
        self._executor.health.listener = self._breaker_event
        for w, wk in self.workers.items():
            self._wire_governor(w, wk.governor)
        self._register_sys_tables()

    def chaos(self, schedule=None):
        """Attach a fault injector driven by ``schedule`` to the cluster
        network and return it (pass None for the fault-free baseline with
        canonical delivery order). See :mod:`repro.fault`."""
        from ..fault import FaultInjector

        injector = FaultInjector(schedule)
        self.net.attach(injector)
        if self.tracer is not None:
            # spans carry simulated time off the fault clock, and every
            # chaos event lands inline on the active query's span
            self.tracer.sim_clock = lambda: injector.tick
        # the recorder and sampler follow the fault clock too, so chaos
        # runs replay with deterministic ticks in sys.events/history
        if self.recorder is not None:
            self.recorder.clock = lambda: injector.tick
        if self.sampler is not None:
            self.sampler.clock = lambda: injector.tick
        injector.listener = self._chaos_event
        return injector

    def _chaos_event(self, ev) -> None:
        """Injector listener: every fault lands on the active query's
        trace span AND in the flight recorder."""
        tr = self.tracer
        if tr is not None:
            tr.event(
                "chaos:" + ev.kind,
                node=ev.node,
                src=ev.src,
                dst=ev.dst,
                tag=ev.tag,
                detail=ev.detail,
            )
        rec = self.recorder
        if rec is not None:
            rec.record(
                "chaos_" + ev.kind,
                node=-1 if ev.node is None else ev.node,
                src=ev.src,
                dst=ev.dst,
                tag=ev.tag,
                detail=ev.detail,
            )

    # -- introspection wiring (DESIGN.md §14) -------------------------------------
    def _register_sys_tables(self) -> None:
        """Register every sys.* relation as a virtual catalog entry on
        all coordinators, plus live row-count stats for the optimizer."""
        from ..storage.partition import RoundRobin

        for name, schema in SYS_SCHEMAS.items():
            entry = CatalogEntry(name, schema, RoundRobin(), virtual=True)
            for c in self.coordinators:
                c.catalog.add_virtual(entry)
        # cheap live row-count estimates, consulted fresh at plan time
        # (a cache miss only); they never bump the stats version, so
        # drifting counts don't thrash the plan cache
        counts = {
            "sys.queries": lambda: len(self.query_log.records()),
            "sys.query_operators": lambda: sum(
                len(r.op_rows) for r in self.query_log.records()
            ),
            "sys.metrics": lambda: 4 * len(self.metrics.snapshot()),
            "sys.metrics_history": lambda: (
                self.sampler.stats()["points"] if self.sampler is not None else 0
            ),
            "sys.workers": lambda: len(self.workers),
            "sys.fragments": lambda: sum(
                len(ts.fragments) for wk in self.workers.values()
                for ts in wk.storage.values()
            ),
            "sys.plan_cache": lambda: len(self.plan_cache),
            "sys.shared_scans": lambda: sum(
                len(ts.fragments) for wk in self.workers.values()
                for ts in wk.storage.values()
            ),
            "sys.events": lambda: (
                self.recorder.stats()["retained"] if self.recorder is not None else 0
            ),
        }
        for c in self.coordinators:
            for name, fn in counts.items():
                c.stats.register_dynamic(
                    name, lambda f=fn: TableStats(float(max(1, f())))
                )

    def _wire_governor(self, worker_id: int, governor: MemoryGovernor) -> None:
        def on_spill(nbytes: int, _w: int = worker_id) -> None:
            rec = self.recorder
            if rec is not None:
                rec.record("spill", node=_w, nbytes=nbytes)

        governor.listener = on_spill

    def _breaker_event(self, worker: int, old: str, new: str) -> None:
        """Health-tracker listener: circuit-breaker transitions
        (healthy/blacklisted/probation) land in the flight recorder."""
        rec = self.recorder
        if rec is not None:
            rec.record("breaker_" + new, node=worker, prev=old)

    def _record_admission(self, qid: int, wait_s: float, granted: bool = True) -> None:
        self.query_log.note_admission(qid, wait_s)
        rec = self.recorder
        if rec is not None:
            rec.record(
                "admission_grant" if granted else "admission_timeout",
                qid=qid,
                wait_s=round(wait_s, 6),
            )

    def _introspection_tick(self) -> None:
        """Per-query-completion cadence check for the metrics sampler."""
        if self.sampler is not None:
            self.sampler.maybe_sample()

    def _make_fs(self, worker_id: int) -> FileSystem:
        if self.config.data_dir:
            return LocalFS(f"{self.config.data_dir}/worker{worker_id}")
        return MemFS()

    # -- concurrent serving -------------------------------------------------------
    def session(self) -> Session:
        """A client connection, load-balanced round-robin across
        coordinators (the paper's client-distribution scheme)."""
        return Session(self, next(self._session_rr) % self.config.n_coordinators)

    def submit(self, text: str, naive_dataflow: bool = False):
        """Run ``text`` asynchronously on a fresh session; returns a
        :class:`concurrent.futures.Future` of the :class:`QueryResult`.
        Queries still pass through admission, so at most
        ``max_concurrent_queries`` execute at once."""
        with self._submit_mu:
            if self._submit_pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._submit_pool = ThreadPoolExecutor(
                    max_workers=max(4, 2 * self.config.max_concurrent_queries),
                    thread_name_prefix="client",
                )
            pool = self._submit_pool
        sess = self.session()
        return pool.submit(sess.sql, text, naive_dataflow)

    def close(self) -> None:
        """Shut down the client pool and the shared morsel scheduler."""
        with self._submit_mu:
            if self._submit_pool is not None:
                self._submit_pool.shutdown(wait=True)
                self._submit_pool = None
        self.scheduler.shutdown()

    def concurrency_stats(self) -> dict:
        """Serving-layer observability: admission, plan cache, morsels."""
        return {
            "admission": self.admission.stats(),
            "plan_cache": self.plan_cache.stats(),
            "morsel_tasks": self.scheduler.submitted,
            "peak_memory": max(w.governor.peak for w in self.workers.values()),
            "memory_budget_per_node": self.config.memory_per_node,
        }

    # -- telemetry ----------------------------------------------------------------
    def _register_collectors(self) -> None:
        """Wire every subsystem's existing counters into the registry as
        pull collectors — sampled at snapshot time, zero hot-path cost."""
        m = self.metrics
        workers = self.workers

        def per_worker(fn):
            def collect():
                for w, wk in workers.items():
                    yield {"node": str(w)}, fn(wk)

            return collect

        # buffer manager
        m.register_collector(
            "repro_buffer_hits_total", "counter", "buffer pool page hits",
            per_worker(lambda wk: wk.bufmgr.hits),
        )
        m.register_collector(
            "repro_buffer_misses_total", "counter", "buffer pool page misses",
            per_worker(lambda wk: wk.bufmgr.misses),
        )
        m.register_collector(
            "repro_buffer_evictions_total", "counter", "buffer pool evictions",
            per_worker(lambda wk: wk.bufmgr.evictions),
        )
        m.register_collector(
            "repro_buffer_cached_pages", "gauge", "pages resident in the pool",
            per_worker(lambda wk: wk.bufmgr.cached_pages),
        )

        # near-data storage layer: these reconcile exactly with ScanStats
        # (each fragment folds its per-scan deltas into lifetime counters)
        def storage_total(field_name):
            def fn(wk):
                return sum(
                    getattr(ts.cumulative_stats(), field_name)
                    for ts in wk.storage.values()
                )

            return fn

        m.register_collector(
            "repro_storage_pages_read_total", "counter",
            "column/row pages fetched and decoded by table scans",
            per_worker(storage_total("pages_read")),
        )
        m.register_collector(
            "repro_storage_pages_skipped_total", "counter",
            "pages avoided by zone maps, predicate cache, indexes, or encoded-page pruning",
            per_worker(storage_total("pages_skipped")),
        )
        m.register_collector(
            "repro_storage_pages_pushed_down_total", "counter",
            "pages whose predicate atoms ran over the encoded representation",
            per_worker(storage_total("pages_pushed_down")),
        )
        m.register_collector(
            "repro_storage_pages_shared_total", "counter",
            "pages served from a shared-scan leader's published arrays",
            per_worker(storage_total("pages_shared")),
        )
        m.register_collector(
            "repro_storage_shared_attaches_total", "counter",
            "scans that attached to another query's in-flight page pass",
            per_worker(storage_total("shared_attaches")),
        )
        # decoded-page caches are content-keyed and process-wide
        from ..storage.col_page import decoded_cache_stats

        for key, kind in (
            ("hits", "counter"),
            ("misses", "counter"),
            ("evictions", "counter"),
            ("bytes", "gauge"),
        ):
            m.register_collector(
                f"repro_storage_decoded_cache_{key}" + ("_total" if kind == "counter" else ""),
                kind,
                f"decoded-page LRU cache {key}",
                lambda k=key: [({}, decoded_cache_stats()[k])],
            )
        # lock managers (per worker node)
        nodes = self.txn_system.nodes
        m.register_collector(
            "repro_locks_waits_total", "counter", "lock requests that had to queue",
            lambda: (({"node": str(w)}, n.locks.waits) for w, n in nodes.items()),
        )
        m.register_collector(
            "repro_locks_wait_seconds_total", "counter",
            "simulated seconds spent waiting for locks",
            lambda: (({"node": str(w)}, n.locks.wait_time_s) for w, n in nodes.items()),
        )
        m.register_collector(
            "repro_locks_deadlocks_total", "counter", "deadlocks detected",
            lambda: (({"node": str(w)}, n.locks.deadlocks) for w, n in nodes.items()),
        )
        # write-ahead logs (worker WALs + coordinator XA logs)
        def wal_logs():
            for w, n in nodes.items():
                yield str(w), n.log
            for c, xa in self.txn_system.xa.items():
                yield str(c), xa.xa_log

        m.register_collector(
            "repro_wal_records_total", "counter", "WAL records appended",
            lambda: (({"node": w}, log.records_written) for w, log in wal_logs()),
        )
        m.register_collector(
            "repro_wal_fsync_batches_total", "counter",
            "force() barriers that flushed pending records (group commits)",
            lambda: (({"node": w}, log.fsync_batches) for w, log in wal_logs()),
        )
        # admission controller
        adm = self.admission
        m.register_collector(
            "repro_admission_queue_depth", "gauge", "queries queued for admission",
            lambda: [({}, adm.queue_depth)],
        )
        m.register_collector(
            "repro_admission_admitted_total", "counter", "queries admitted",
            lambda: [({}, adm.admitted_total)],
        )
        m.register_collector(
            "repro_admission_grant_wait_seconds_total", "counter",
            "wall seconds queries queued before their memory grant",
            lambda: [({}, adm.grant_wait_s)],
        )
        m.register_collector(
            "repro_admission_timeouts_total", "counter", "admissions that timed out",
            lambda: [({}, adm.timeouts)],
        )
        # morsel scheduler
        sched = self.scheduler
        m.register_collector(
            "repro_scheduler_tasks_total", "counter", "morsel tasks submitted",
            lambda: [({}, sched.submitted)],
        )
        m.register_collector(
            "repro_scheduler_busy_seconds_total", "counter",
            "wall seconds pool threads spent running morsel tasks",
            lambda: [({}, sched.busy.value)],
        )
        # plan cache
        pc = self.plan_cache
        m.register_collector(
            "repro_plancache_hits_total", "counter", "plan cache hits",
            lambda: [({}, pc.hits)],
        )
        m.register_collector(
            "repro_plancache_misses_total", "counter", "plan cache misses",
            lambda: [({}, pc.misses)],
        )
        # adaptive optimizer (Q-error feedback loop)
        fb = self.feedback
        m.register_collector(
            "repro_optimizer_feedback_runs_total", "counter",
            "executions whose actuals were folded into feedback records",
            lambda: [({}, fb.runs_total)],
        )
        m.register_collector(
            "repro_optimizer_replans_total", "counter",
            "plans evicted and re-optimized with observed cardinalities",
            lambda: [({}, fb.replans_total)],
        )
        m.register_collector(
            "repro_optimizer_qerror_worst", "gauge",
            "worst per-operator Q-error across live feedback records",
            lambda: [({}, fb.worst_q())],
        )
        m.register_collector(
            "repro_storage_sets_skipped_bloom_total", "counter",
            "column sets skipped by sideways-pushed join bloom filters",
            per_worker(storage_total("sets_skipped_bloom")),
        )
        # network (per-link traffic; links is a plain dict, snapshot under
        # the net lock via list() to stay consistent)
        net = self.net

        def link_samples(attr):
            def collect():
                with net._lock:
                    items = [(k, getattr(s, attr)) for k, s in net.links.items()]
                for (src, dst), v in items:
                    yield {"src": str(src), "dst": str(dst)}, v

            return collect

        m.register_collector(
            "repro_network_link_bytes_total", "counter", "bytes per directed link",
            link_samples("bytes"),
        )
        m.register_collector(
            "repro_network_link_messages_total", "counter", "messages per directed link",
            link_samples("messages"),
        )
        m.register_collector(
            "repro_network_bytes_total", "counter", "total bytes put on the wire",
            lambda: [({}, net.total_bytes)],
        )
        m.register_collector(
            "repro_network_forwarded_bytes_total", "counter",
            "bytes relayed through hub nodes",
            lambda: [({}, net.forwarded_bytes)],
        )
        # elastic membership (DESIGN.md §10)
        m.register_collector(
            "repro_cluster_workers", "gauge", "workers in the current placement",
            lambda: [({}, len(self.worker_ids))],
        )
        m.register_collector(
            "repro_placement_epoch", "gauge", "current placement-map epoch",
            lambda: [({}, self.catalog.placement_epoch)],
        )
        m.register_collector(
            "repro_admission_budget_bytes", "gauge",
            "admission memory budget (follows live membership)",
            lambda: [({}, adm.total_budget)],
        )
        m.register_collector(
            "repro_rebalance_total", "counter", "membership/placement changes applied",
            lambda: [({}, len(self.rebalances))],
        )
        m.register_collector(
            "repro_rebalance_bytes_total", "counter",
            "fragment bytes moved by rebalance streams",
            lambda: [({}, sum(r.bytes_moved for r in self.rebalances))],
        )
        m.register_collector(
            "repro_rebalance_retries_total", "counter",
            "rebalance stream sends retried after chaos faults",
            lambda: [({}, sum(r.retries for r in self.rebalances))],
        )

    def metrics_snapshot(self) -> dict:
        """All cluster metrics as a nested dict (samples labeled by node /
        link / query where applicable)."""
        return self.metrics.snapshot()

    def metrics_prometheus(self) -> str:
        """The metrics snapshot in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    def export_trace(self, qid: int | None = None, path: str | None = None) -> dict:
        """The Chrome ``trace_event`` JSON of query ``qid`` (default: the
        most recent traced query); load the written file in
        ``chrome://tracing`` or Perfetto. Requires tracing to be enabled
        (``ClusterConfig.tracing`` or a slow-query threshold)."""
        if self.tracer is None:
            raise PlanError(
                "tracing is disabled; construct the Database with "
                "ClusterConfig(tracing=True)"
            )
        trace = self.tracer.export(qid)
        if trace is None:
            raise PlanError(f"no trace recorded for qid={qid!r}")
        if path is not None:
            with open(path, "w") as fh:
                json.dump(trace, fh)
        return trace

    # -- catalog views ------------------------------------------------------------
    @property
    def catalog(self) -> ClusterCatalog:
        return self.coordinators[0].catalog

    @property
    def stats(self) -> StatsProvider:
        return self.coordinators[0].stats

    def _replicate_metadata(self, fn) -> None:
        """Apply a metadata mutation on every coordinator replica.

        The 2PC-backed path in :mod:`repro.txn` uses this hook; outside a
        transaction it still updates all replicas atomically-in-process.
        """
        for c in self.coordinators:
            fn(c)

    # -- DDL ---------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        partition: Optional[tuple[str, tuple[str, ...]]] = None,
        fmt: str = "column",
        clustering: Sequence[str] = (),
    ) -> None:
        if name.startswith("sys."):
            raise CatalogError("the sys schema is reserved for system tables")
        scheme = scheme_from_clause(partition, len(self.worker_ids))
        entry = CatalogEntry(name, schema, scheme, fmt, tuple(clustering))
        with self._write_lock:
            self._replicate_metadata(lambda c: c.catalog.add(entry))
            for w in self.workers.values():
                w.create_table(entry)

    def drop_table(self, name: str) -> None:
        if name.startswith("sys."):
            raise CatalogError("system tables cannot be dropped")
        with self._write_lock:
            self._replicate_metadata(lambda c: c.catalog.drop(name))
            for w in self.workers.values():
                w.drop_table(name)

    def create_index(self, table: str, column: str) -> None:
        """Build the set-granular secondary index on every worker."""
        entry = self.catalog.entry(table)
        entry.schema.resolve(column)  # validate
        for w in self.workers.values():
            w.storage[table].create_index(column)

    def register_external(self, name: str, uet: ExternalTableType) -> None:
        """External table framework: expose a UET's fragments to workers."""
        from ..storage.partition import RoundRobin

        entry = CatalogEntry(name, uet.schema(), RoundRobin(), external=True)
        self._replicate_metadata(lambda c: c.catalog.add(entry))
        frags = uet.fragments(len(self.worker_ids))
        for w, wk in self.workers.items():
            mine = [f for f in frags if (f.preferred_node is None or f.preferred_node == w)]
            wk.external[name] = (uet, mine)

    # -- elastic membership (DESIGN.md §10) ----------------------------------------------
    def add_worker(self) -> RebalanceReport:
        """Scale out by one worker while concurrent sessions keep serving.

        Allocates a fresh worker id (ids are never reused), registers it
        with the network and transaction system, re-shards every table's
        fragments across the grown membership, and publishes the next
        placement epoch. In-flight queries finish against the epoch they
        planned under — their executor clones pin the old worker set and
        the old (never-mutated) storages; queries that start after the
        publish plan and execute against the new epoch.
        """
        with self._write_lock:
            # high-water mark over every epoch ever published, so the id
            # of a drained worker is never handed to a new one
            new_id = 1 + max(
                w
                for pm in self.catalog.placement_history.values()
                for w in pm.workers
            )
            wk = Worker(new_id, self.config, self._make_fs(new_id))
            self.net.add_node(new_id)
            return self._rebalance(
                "add", sorted(self.worker_ids) + [new_id], joining={new_id: wk}
            )

    def drain_worker(self, worker_id: int) -> RebalanceReport:
        """Gracefully remove a worker: drain first, then re-shard.

        The worker is marked draining in the shared health tracker the
        moment the drain starts, so replicated reads route around it
        immediately; partitioned reads keep hitting it until its
        fragments have moved (the data lives nowhere else yet). A
        draining placement epoch is published before the move and the
        final epoch (without the worker) after, so the transition is
        visible in ``placement_history``.
        """
        with self._write_lock:
            if worker_id not in self.worker_ids:
                raise PlanError(f"worker {worker_id} is not in the placement map")
            if len(self.worker_ids) < 2:
                raise PlanError("cannot drain the last worker")
            return self._rebalance(
                "drain",
                [w for w in self.worker_ids if w != worker_id],
                leaving=(worker_id,),
            )

    def replicate_table(self, name: str) -> RebalanceReport:
        """Re-replicate a hot partitioned table to every worker.

        The elasticity policy's answer to broadcast/forwarding-heavy
        traffic on a small dimension table: convert it to ``Replicated``
        so joins against it stop shuffling. Publishes a new placement
        epoch (same membership, new fragment placement)."""
        with self._write_lock:
            entry = self.catalog.entry(name)
            if entry.external:
                raise PlanError(f"external table {name!r} cannot be re-replicated")
            if isinstance(entry.scheme, Replicated):
                raise PlanError(f"table {name!r} is already replicated")
            target = CatalogEntry(
                name, entry.schema, Replicated(), entry.fmt, entry.clustering
            )
            return self._rebalance(
                "replicate", list(self.worker_ids), retable={name: target}
            )

    def _rebalance(
        self,
        kind: str,
        new_ids: list[int],
        joining: dict[int, Worker] | None = None,
        leaving: tuple[int, ...] = (),
        retable: dict[str, CatalogEntry] | None = None,
    ) -> RebalanceReport:
        """Move fragments to the new placement, then publish the epoch.

        Correctness under concurrency comes from publish-by-replacement:
        the move builds *new* ``TableStorage`` objects (on epoch-versioned
        file paths) and new per-worker storage dicts, never mutating
        anything the current epoch's executor — or any in-flight query's
        pinned clone of it — references. The publish step then atomically
        swaps in a new executor, placement map, and worker set. Data moves
        as real ``rebalance|<table>``-tagged network streams so chaos
        faults hit the rebalance itself; a failed stream retries while
        advancing the fault clock (crash windows heal), then falls back to
        a coordinator-mediated route.
        """
        joining = dict(joining or {})
        retable = dict(retable or {})
        old_ids = list(self.worker_ids)
        health = self._executor.health
        t0 = time.perf_counter()
        for w in leaving:
            health.mark_draining(w)
        if leaving:
            # announce the drain: new plans see the transitional epoch
            self._replicate_metadata(
                lambda c: c.catalog.set_placement(tuple(old_ids), draining=tuple(leaving))
            )
        report = RebalanceReport(
            kind=kind,
            workers=tuple(sorted(new_ids)),
            added=tuple(sorted(set(new_ids) - set(old_ids))),
            removed=tuple(sorted(leaving)),
        )
        tr = self.tracer
        qid = next(self._qid)
        root = (
            tr.start_query(qid, f"-- rebalance:{kind} -> {sorted(new_ids)}")
            if tr is not None
            else None
        )
        try:
            coord = self.coord_ids[0]
            all_ids = sorted(set(old_ids) | set(new_ids))
            topo = BinomialGraphTopology(all_ids, self.config.n_max)
            tree = TreeTopology([coord] + all_ids, self.config.n_max, root=coord)
            new_storage = self._move_fragments(
                old_ids, sorted(new_ids), joining, leaving, retable, topo, tree, report
            )
            self._publish_epoch(sorted(new_ids), joining, leaving, retable, new_storage, report)
        finally:
            if root is not None:
                tr.end(root, error=report.epoch == 0)
        report.duration_s = time.perf_counter() - t0
        self.rebalances.append(report)
        return report

    def _move_fragments(
        self, old_ids, new_ids, joining, leaving, retable, topo, tree, report
    ) -> dict[int, dict[str, TableStorage]]:
        """Build each new-epoch worker's storage dict, streaming moved
        fragments over the network as tagged rebalance traffic."""
        epoch = self.catalog.placement_epoch + 1
        survivors = [w for w in old_ids if w not in leaving]
        workers_of = dict(self.workers)
        workers_of.update(joining)
        new_storage: dict[int, dict[str, TableStorage]] = {w: {} for w in new_ids}
        tr = self.tracer
        for name in sorted(self.catalog.tables):
            entry = self.catalog.tables[name]
            if entry.external:
                continue
            target = retable.get(name, entry)
            sp = (
                tr.begin("rebalance.table", cat="rebalance", table=name)
                if tr is not None
                else None
            )
            base_bytes = report.bytes_moved
            try:
                self._reshard_table(
                    name, entry, target, old_ids, new_ids, survivors,
                    workers_of, new_storage, topo, tree, report, epoch,
                )
            finally:
                if sp is not None:
                    tr.end(sp, nbytes=report.bytes_moved - base_bytes)
        self._reassign_external(joining, leaving, survivors)
        return new_storage

    def _reshard_table(
        self, name, entry, target, old_ids, new_ids, survivors,
        workers_of, new_storage, topo, tree, report, epoch,
    ) -> None:
        scheme = target.scheme
        if isinstance(entry.scheme, Replicated) and isinstance(scheme, Replicated):
            # replicated table across a membership change: survivors keep
            # their (immutable) copy; joining workers stream one from a donor
            donor = survivors[0]
            src_ts = self.workers[donor].storage[name]
            moved = False
            for w in new_ids:
                if w in old_ids:
                    new_storage[w][name] = self.workers[w].storage[name]
                    continue
                full = _all_of(src_ts)
                if full.length:
                    self._move_stream(topo, tree, donor, w, full.to_bytes(), name, report)
                ts = self._fresh_storage(workers_of[w], target, epoch)
                if full.length:
                    ts.load(full)
                self._copy_indexes(src_ts, ts)
                new_storage[w][name] = ts
                moved = True
            if moved:
                report.tables_moved += 1
            return
        if isinstance(scheme, Replicated):
            # re-replication of a partitioned table: every worker ends up
            # with the full row set; each foreign part crosses the wire
            parts = {src: _all_of(self.workers[src].storage[name]) for src in old_ids}
            full = RowBatch.concat(entry.schema, [p for p in parts.values()])
            sample_old = self.workers[old_ids[0]].storage[name]
            for dst in new_ids:
                for src in old_ids:
                    p = parts[src]
                    if src != dst and p.length:
                        self._move_stream(topo, tree, src, dst, p.to_bytes(), name, report)
                ts = self._fresh_storage(workers_of[dst], target, epoch)
                if full.length:
                    ts.load(full)
                self._copy_indexes(sample_old, ts)
                new_storage[dst][name] = ts
            report.tables_moved += 1
            return
        # partitioned re-shard: re-run the table's node assignment over
        # the new membership; rows whose worker changes cross the wire
        from ..storage.partition import RangePartition

        n_new = len(new_ids)
        if isinstance(scheme, RangePartition) and len(scheme.bounds) != n_new - 1:
            raise CatalogError(
                f"range-partitioned table {name!r} has {len(scheme.bounds)} split "
                f"points and cannot be re-sharded to {n_new} workers"
            )
        parts_for: dict[int, list[RowBatch]] = {w: [] for w in new_ids}
        for src in old_ids:
            batch = _all_of(self.workers[src].storage[name])
            if batch.length == 0:
                continue
            targets = scheme.assign_nodes(batch, n_new)
            for i, dst in enumerate(new_ids):
                part = batch.filter(targets == i)
                if part.length == 0:
                    continue
                if dst != src:
                    self._move_stream(topo, tree, src, dst, part.to_bytes(), name, report)
                parts_for[dst].append(part)
        sample_old = self.workers[old_ids[0]].storage[name]
        for dst in new_ids:
            ts = self._fresh_storage(workers_of[dst], target, epoch)
            for part in parts_for[dst]:
                ts.load(part, disk_of_rows(part, scheme, self.config.disks_per_node))
            self._copy_indexes(sample_old, ts)
            new_storage[dst][name] = ts
        report.tables_moved += 1

    def _reassign_external(self, joining, leaving, survivors) -> None:
        """External tables: a leaving worker's fragments move to the
        survivors; joining workers start with none. Worker ``external``
        dicts are replaced, never mutated — in-flight queries captured
        the old dict by reference."""
        ext = [n for n, e in self.catalog.tables.items() if e.external]
        for name in ext:
            donor = next(
                (w for w in survivors if name in self.workers[w].external), None
            )
            if donor is None:
                continue
            uet = self.workers[donor].external[name][0]
            for wk in joining.values():
                wk.external = {**wk.external, name: (uet, [])}
            orphans = []
            for w in leaving:
                orphans.extend(self.workers[w].external.get(name, (None, []))[1])
            for i, frag in enumerate(orphans):
                w = survivors[i % len(survivors)]
                wk = self.workers[w]
                cur_uet, cur_frags = wk.external[name]
                wk.external = {
                    **wk.external, name: (cur_uet, list(cur_frags) + [frag])
                }

    def _move_stream(self, topo, tree, src: int, dst: int, payload: bytes,
                     table: str, report: RebalanceReport) -> None:
        """Deliver one fragment stream ``src -> dst`` as tagged rebalance
        traffic, surviving chaos faults injected mid-rebalance.

        Sends retry up to ``rebalance_send_retries`` times, advancing the
        fault clock between attempts so crash windows heal; failed
        attempts' partial deliveries are dropped (streams are processed
        one at a time, so only this stream's messages are in flight).
        When the direct binomial-graph route stays broken, the stream is
        rerouted through the coordinator's tree — a different path that
        avoids the failed hub."""
        tag = f"rebalance|{table}"
        inj = self.net.injector
        budget = self.config.rebalance_send_retries
        coord = self.coord_ids[0]

        def direct() -> bool:
            self.net.route_send(topo, src, dst, payload, tag=tag)
            return bool(self.net.recv_all(dst, tag=tag))

        def via_coordinator() -> bool:
            self.net.route_send(tree, src, coord, payload, tag=tag)
            self.net.recv_all(coord, tag=tag)
            self.net.route_send(tree, coord, dst, payload, tag=tag)
            return bool(self.net.recv_all(dst, tag=tag))

        for hop, attempt in (("direct", direct), ("reroute", via_coordinator)):
            for _ in range(budget):
                try:
                    if attempt():
                        report.streams += 1
                        report.bytes_moved += len(payload)
                        if hop == "reroute":
                            report.reroutes += 1
                        return
                except (NetworkError, WorkerFailureError):
                    pass
                report.retries += 1
                self.net.clear_inboxes("rebalance|")
                if inj is not None:
                    inj.record(
                        "rebalance_retry", node=dst, tag=tag,
                        detail=f"{hop} {src}->{dst} retrying",
                    )
                    inj.advance(4)  # crash windows heal on the fault clock
        raise WorkerFailureError(
            dst,
            f"rebalance stream for {table!r} ({src}->{dst}) undeliverable "
            f"after {2 * budget} attempts",
        )

    def _fresh_storage(self, worker: Worker, entry: CatalogEntry, epoch: int) -> TableStorage:
        """A new-epoch TableStorage on epoch-versioned file paths, so the
        old epoch's files — still being scanned by in-flight queries —
        are never touched."""
        return TableStorage(
            worker.fs,
            worker.bufmgr,
            f"{entry.name}@e{epoch}",
            entry.schema,
            fmt=entry.fmt,
            n_disks=self.config.disks_per_node,
            page_size=self.config.page_size,
            codec=self.config.compression,
            clustering=entry.clustering,
        )

    def _copy_indexes(self, old_ts: TableStorage, new_ts: TableStorage) -> None:
        for col in sorted(old_ts.indexed_columns):
            new_ts.create_index(col)

    def _publish_epoch(
        self, new_ids, joining, leaving, retable, new_storage, report
    ) -> None:
        """Atomically switch the cluster to the new placement.

        New queries pick everything up from here; in-flight queries keep
        their pinned clones of the previous executor (old worker set,
        old topologies, old storage dicts) and finish unperturbed."""
        old_exec = self._executor
        for w, wk in joining.items():
            self.workers[w] = wk
            self.txn_system.register_worker(wk)
        # copy-on-rebalance: rebind each worker's storage dict; the old
        # dict (and its TableStorage objects) stays alive for old epochs
        for w in new_ids:
            self.workers[w].storage = new_storage[w]
        for w in leaving:
            self.workers.pop(w, None)
            # the drain is over: the worker left the placement entirely
            old_exec.health.clear_draining(w)
        for tname, tentry in retable.items():
            self._replicate_metadata(
                lambda c, tname=tname, tentry=tentry: c.catalog.tables.update(
                    {tname: tentry}
                )
            )
        self.worker_ids = sorted(new_ids)
        published: list[PlacementMap] = []
        self._replicate_metadata(
            lambda c: published.append(c.catalog.set_placement(tuple(self.worker_ids)))
        )
        report.epoch = published[0].epoch
        ex = DistributedExecutor(
            {w: self.workers[w].runtime() for w in self.worker_ids},
            self.coord_ids[0],
            self.net,
            self.config,
        )
        ex.scheduler = self.scheduler
        ex.health = old_exec.health  # failure history survives epochs
        ex.tracer = old_exec.tracer
        ex.fault_injector = old_exec.fault_injector
        ex.epoch = report.epoch
        # introspection survives epochs too: providers close over the
        # Database (not a specific executor), the recorder is shared,
        # and joining workers' governors start reporting spills
        ex.sys_tables = old_exec.sys_tables
        ex.recorder = old_exec.recorder
        for wk in joining.values():
            self._wire_governor(wk.worker_id, wk.governor)
        if self.recorder is not None:
            self.recorder.record(
                "epoch_publish",
                epoch=report.epoch,
                change=report.kind,
                workers=sorted(self.worker_ids),
            )
        self._executor = ex
        # membership-aware resource management: the admission budget
        # follows the live aggregate memory; worker DOP scales back when
        # the cluster is degraded below its baseline size
        self.admission.resize(self.config.memory_per_node * len(self.worker_ids))
        for w in self.worker_ids:
            self.workers[w].monitor.set_membership(
                len(self.worker_ids), self.config.n_workers
            )

    def elasticity_stats(self) -> dict:
        """Membership + rebalance observability for benches and tests."""
        return {
            "workers": len(self.worker_ids),
            "placement_epoch": self.catalog.placement_epoch,
            "rebalances": len(self.rebalances),
            "bytes_moved": sum(r.bytes_moved for r in self.rebalances),
            "streams": sum(r.streams for r in self.rebalances),
            "retries": sum(r.retries for r in self.rebalances),
            "reroutes": sum(r.reroutes for r in self.rebalances),
            "draining": sorted(self._executor.health.draining()),
        }

    # -- loading & statistics ---------------------------------------------------------
    def load(self, name: str, batch: RowBatch) -> None:
        """Bulk-load rows, partitioning across workers per the table scheme."""
        entry = self.catalog.entry(name)
        with self._write_lock:
            n = len(self.worker_ids)
            if isinstance(entry.scheme, Replicated):
                for w in self.workers.values():
                    w.storage[name].load(batch)
            else:
                targets = entry.scheme.assign_nodes(batch, n)
                for i, w in enumerate(self.worker_ids):
                    part = batch.filter(targets == i)
                    if part.length:
                        disks = disk_of_rows(part, entry.scheme, self.config.disks_per_node)
                        self.workers[w].storage[name].load(part, disks)
            self.analyze(name, batch)

    def analyze(self, name: str, sample: RowBatch | None = None) -> None:
        """Refresh optimizer statistics (replicated to all coordinators)."""
        if sample is None:
            parts = []
            for w in self.workers.values():
                st = w.storage.get(name)
                if st is not None:
                    parts.append(st.fragments[0].schema and _all_of(st))
            sample = RowBatch.concat(self.catalog.entry(name).schema, [p for p in parts if p])
        stats = TableStats.from_batch(sample)
        self._replicate_metadata(lambda c: c.stats.put(name, stats))

    def set_table_stats(self, name: str, stats: TableStats) -> None:
        """Install analytic statistics (used by SF1000 planning harnesses)."""
        self._replicate_metadata(lambda c: c.stats.put(name, stats))

    # -- query pipeline -----------------------------------------------------------------
    def plan_select(
        self,
        stmt: SelectStmt,
        naive_dataflow: bool = False,
        coordinator: int = 0,
        overrides: dict | None = None,
    ) -> tuple[LogicalPlan, PhysOp]:
        from ..optimizer.logical import reset_fresh_names

        with self._plan_lock:  # fresh-name state is global: one planner at a time
            reset_fresh_names()  # deterministic plans per statement
            coord = self.coordinators[coordinator]
            binder = Binder(coord.catalog)
            logical = binder.bind(stmt)
            # ``overrides`` (locus -> observed rows, from the feedback
            # loop) reach both derivers, so join enumeration and the
            # dataflow cost model each see the actuals
            deriver = StatsDeriver(coord.stats, overrides=overrides)
            logical = optimize_logical(logical, deriver)
            placement = lambda t: coord.catalog.entry(t).partitioning()
            if naive_dataflow:
                physical = convert_naive(logical, placement)
            else:
                deriver2 = StatsDeriver(coord.stats, overrides=overrides)
                physical = DataflowPlanner(placement, deriver2, self.config).plan(logical)
            return logical, physical

    def _plan_select_cached(
        self, text: str, stmt: SelectStmt, naive_dataflow: bool, coordinator: int
    ) -> tuple[LogicalPlan, PhysOp, tuple]:
        """Plan through the coordinator's plan cache.

        Plans are immutable after optimization, so a cached (logical,
        physical) pair is shared by concurrent executions as-is; only
        per-query executor state is cloned. The key carries the catalog
        and statistics versions, so DDL or ANALYZE invalidates. The key
        is returned too — execution feedback files under it."""
        coord = self.coordinators[coordinator]
        key = PlanCache.key(
            text,
            "naive" if naive_dataflow else "opt",
            coordinator,
            coord.catalog.version,
            coord.stats.version,
        )
        pair = self.plan_cache.get(key)
        if pair is None:
            fb = self.feedback.get(key)
            pair = self.plan_select(
                stmt,
                naive_dataflow,
                coordinator,
                overrides=fb.overrides if fb is not None and fb.overrides else None,
            )
            self.plan_cache.put(key, pair)
        return pair[0], pair[1], key

    def _run_select(
        self,
        logical,
        physical,
        txn=None,
        coordinator: int = 0,
        qid: int | None = None,
        profiled: bool = False,
    ) -> QueryResult:
        """Admission-gated distributed execution with restart-on-failure.

        Each run gets a shallow executor clone (fresh counters, a unique
        ``q<id>|`` exchange-tag namespace) so concurrent queries never
        share mutable state or cross-deliver messages; the admission
        grant is held for the query's whole lifetime, restarts included.
        The query executes rooted at the session's coordinator node, so
        round-robined sessions spread gather/merge load across the
        replicated coordinators (paper §II: clients load-balance over
        coordinators).
        """
        qid = qid if qid is not None else next(self._qid)
        tr = self.tracer
        ex = self._executor.for_query(
            qid, self.coord_ids[coordinator % len(self.coord_ids)], profiled=profiled
        )
        t_adm = time.perf_counter()
        try:
            if tr is not None:
                with tr.span("admit", cat="phase"):
                    admission = self.admission.admit()
            else:
                admission = self.admission.admit()
        except AdmissionTimeout:
            self._record_admission(qid, time.perf_counter() - t_adm, granted=False)
            raise
        self._record_admission(qid, time.perf_counter() - t_adm)
        with admission:
            esp = tr.begin("execute", cat="phase") if tr is not None else None
            try:
                # fault tolerance (paper §I): a mid-query worker failure
                # aborts the query; after the node recovers (ARIES handles
                # its local state) the coordinator simply restarts the
                # query, up to the configured restart budget
                attempts = 0
                carried = ExecStats()
                while True:
                    attempts += 1
                    asp = (
                        tr.begin("attempt", cat="phase", attempt=attempts)
                        if tr is not None
                        else None
                    )
                    try:
                        # solo queries keep the serial per-query peak-memory
                        # semantics; under concurrency governors are shared,
                        # so peak reflects aggregate cluster pressure
                        batch, stats = ex.execute(
                            physical, reset_governors=self.admission.active == 1
                        )
                        if asp is not None:
                            tr.end(asp, rows=stats.rows_returned)
                        break
                    except WorkerFailureError as e:
                        if asp is not None:
                            tr.end(asp, error=True, worker=e.worker_id)
                        carried.merge(
                            ExecStats(
                                retries=ex.retries,
                                backoff_time=ex.backoff_time,
                                failed_workers=tuple(
                                    sorted(ex.failed_workers | {e.worker_id})
                                ),
                            )
                        )
                        if attempts > self.config.max_query_restarts:
                            raise WorkerFailureError(
                                e.worker_id,
                                f"query restart budget exhausted after {attempts} attempts "
                                f"(max_query_restarts={self.config.max_query_restarts}): {e}",
                            ) from e
                        # abandon only THIS query's in-flight exchanges
                        self.net.clear_inboxes(ex.qtag)
                        if self.net.injector is not None:
                            # restarting is not free: failure detection and
                            # requeueing consume fault-clock time, during
                            # which crashed nodes progress toward recovery
                            self.net.injector.advance(8)
            finally:
                if esp is not None:
                    tr.end(esp)
        # fold the failed attempts' fault counters into the final
        # attempt's stats (additive counters sum, rows_returned is the
        # successful attempt's)
        stats = carried.merge(stats)
        stats.restarts = attempts - 1
        result = QueryResult(batch, stats, logical, physical, qid=qid, epoch=ex.epoch)
        result.op_rows = dict(ex.op_rows)
        if profiled:
            result.profiles = ex.op_prof
        return result

    def sql(
        self,
        text: str,
        naive_dataflow: bool = False,
        coordinator: int = 0,
        txn=None,
    ) -> QueryResult:
        stmt = _parse_cached(text)
        if isinstance(stmt, SelectStmt):
            return self._select(text, stmt, naive_dataflow, coordinator, txn)
        if isinstance(stmt, CreateTable):
            schema = Schema.of(*((c.name, c.dtype) for c in stmt.columns))
            self.create_table(stmt.name, schema, stmt.partition, stmt.fmt, stmt.clustering)
            return _empty_result()
        if isinstance(stmt, DropTable):
            self.drop_table(stmt.name)
            return _empty_result()
        from ..sql.ast import CreateIndex

        if isinstance(stmt, CreateIndex):
            self.create_index(stmt.table, stmt.column)
            return _empty_result()
        if isinstance(stmt, InsertValues):
            return self.insert_values(stmt, txn=txn)
        if isinstance(stmt, DeleteStmt):
            return self.delete_where(stmt, txn=txn)
        if isinstance(stmt, UpdateStmt):
            return self.update_where(stmt, txn=txn)
        raise PlanError(f"unsupported statement {type(stmt).__name__}")

    def _select(
        self, text: str, stmt: SelectStmt, naive_dataflow: bool, coordinator: int, txn
    ) -> QueryResult:
        """The traced SELECT lifecycle: plan phase, execute phase (with
        per-attempt spans), query metrics, and slow-query capture."""
        qid = next(self._qid)
        tr = self.tracer
        t0 = time.perf_counter()
        self.query_log.start(qid, text, coordinator)
        root = tr.start_query(qid, text) if tr is not None else None
        try:
            psp = tr.begin("plan", cat="phase") if tr is not None else None
            try:
                logical, physical, key = self._plan_select_cached(
                    text, stmt, naive_dataflow, coordinator
                )
            finally:
                if psp is not None:
                    tr.end(psp)
            if txn is not None:
                # serializable reads: SS2PL shared locks on every scanned
                # table, held until the transaction ends (paper §VI);
                # virtual sys.* relations have no storage to lock
                from ..optimizer.logical import Scan, walk

                tables = {
                    n.table
                    for n in walk(logical)
                    if isinstance(n, Scan) and n.table != "__dual"
                    and not self.catalog.entry(n.table).external
                    and not self.catalog.entry(n.table).virtual
                }
                self.txn_system.lock_read(txn, tables)
            result = self._run_select(
                logical, physical, txn=txn, coordinator=coordinator, qid=qid
            )
        except BaseException as e:
            self.query_log.fail(qid, e, time.perf_counter() - t0)
            raise
        finally:
            if root is not None:
                tr.end(root)
        if self.config.adaptive_feedback and self.config.plan_cache_size > 0:
            self._observe_feedback(key, text, stmt, naive_dataflow, coordinator, result)
        self.query_log.finish(qid, result, time.perf_counter() - t0)
        self._finish_query(qid, text, time.perf_counter() - t0, result.stats)
        return result

    def _observe_feedback(
        self, key, text: str, stmt: SelectStmt, naive_dataflow: bool,
        coordinator: int, result: QueryResult,
    ) -> None:
        """Fold one execution's actuals into the feedback store; re-plan
        when the worst per-operator Q-error crosses the threshold.

        The re-plan is eager — the corrected plan replaces the cached
        entry before the next execution — and claimed atomically, so
        concurrent sessions observing the same mis-estimate re-plan once.
        ``claim_replan`` also refuses once the per-statement budget is
        spent or the proposed overrides already shaped the cached plan,
        which bounds oscillation when actuals drift run to run."""
        scores = score_plan(result.physical, result.op_rows or {})
        worst = max(scores, key=lambda s: s.q, default=None)
        self.feedback.observe(
            key,
            text,
            worst.q if worst is not None else 1.0,
            worst.locus if worst is not None else None,
        )
        thr = self.config.replan_qerror_threshold
        if thr <= 0 or worst is None or worst.q <= thr:
            return
        proposed = actual_overrides(result.physical, result.op_rows or {})
        if not proposed or not self.feedback.claim_replan(key, proposed):
            return
        self.query_log.note_replan(result.qid)
        if self.recorder is not None:
            self.recorder.record(
                "replan", qid=result.qid, worst_q=round(worst.q, 3),
                locus=str(worst.locus),
            )
        pair = self.plan_select(stmt, naive_dataflow, coordinator, overrides=proposed)
        self.plan_cache.invalidate(key)
        self.plan_cache.put(key, pair)

    def feedback_stats(self) -> dict:
        """Adaptive-optimizer observability (runs, re-plans, worst Q)."""
        return self.feedback.stats()

    def _finish_query(self, qid: int, text: str, duration: float, stats) -> None:
        """Query-level metrics + the slow-query log (queries over the
        threshold, and any query that restarted under chaos)."""
        self._m_query_total.inc()
        self._m_query_hist.observe(duration)
        self._introspection_tick()
        thr = self.config.slow_query_threshold_s
        if thr <= 0 or (duration < thr and stats.restarts == 0):
            return
        reason = "slow" if duration >= thr else "restarted"
        entry = SlowQuery(
            qid=qid,
            sql=text,
            duration_s=duration,
            restarts=stats.restarts,
            failed_workers=stats.failed_workers,
            reason=reason,
            trace=self.tracer.export(qid) if self.tracer is not None else None,
        )
        with self._slow_mu:
            self.slow_queries.append(entry)
        self._m_query_slow.inc()
        if self.recorder is not None:
            self.recorder.record(
                "slow_query", qid=qid, duration_s=round(duration, 6), reason=reason
            )

    def explain(self, text: str, naive_dataflow: bool = False) -> str:
        stmt = parse(text)
        if not isinstance(stmt, SelectStmt):
            raise PlanError("EXPLAIN supports SELECT only")
        logical, physical = self.plan_select(stmt, naive_dataflow)
        return f"-- logical --\n{logical.pretty()}\n-- dataflow --\n{physical.pretty()}"

    def explain_analyze(self, text: str) -> str:
        """Execute the query profiled and render the dataflow annotated
        with per-operator actuals: rows vs estimates, batches, inclusive
        and self time, data skipping, pages, network bytes, and spill —
        plus footers reconciling pipeline, scan, restart, and per-prefix
        network totals (untagged traffic attributed explicitly)."""
        result = self._explain_analyze_run(text)
        return render_analyze(
            result.physical,
            result.profiles or {},
            result.stats,
            network=self.net.traffic_by_prefix(),
        )

    def _explain_analyze_run(self, text: str) -> QueryResult:
        stmt = parse(text)
        if not isinstance(stmt, SelectStmt):
            raise PlanError("EXPLAIN ANALYZE supports SELECT only")
        qid = next(self._qid)
        tr = self.tracer
        t0 = time.perf_counter()
        root = tr.start_query(qid, text) if tr is not None else None
        try:
            psp = tr.begin("plan", cat="phase") if tr is not None else None
            try:
                logical, physical = self.plan_select(stmt)
            finally:
                if psp is not None:
                    tr.end(psp)
            result = self._run_select(logical, physical, qid=qid, profiled=True)
        finally:
            if root is not None:
                tr.end(root)
        self._finish_query(qid, text, time.perf_counter() - t0, result.stats)
        return result

    def execute_reference(self, text: str) -> RowBatch:
        """Run via the single-node reference executor (oracle for tests)."""
        stmt = parse(text)
        if not isinstance(stmt, SelectStmt):
            raise PlanError("reference executor supports SELECT only")
        coord = self.coordinators[0]
        logical = push_filters(Binder(coord.catalog).bind(stmt))

        def source(tname: str) -> RowBatch:
            entry = coord.catalog.entry(tname)
            if entry.external:
                uet, _ = next(iter(self.workers.values())).external[tname]
                parts = []
                for frag in uet.fragments(1):
                    parts.extend(uet.scan_fragment(frag, self.config.batch_size))
                return RowBatch.concat(entry.schema, parts)
            if isinstance(entry.scheme, Replicated):
                return _all_of(self.workers[self.worker_ids[0]].storage[tname])
            parts = [_all_of(w.storage[tname]) for w in self.workers.values()]
            return RowBatch.concat(entry.schema, parts)

        return execute_logical(logical, source)

    # -- DML (transactional paths live in repro.txn) ------------------------------------
    def insert_values(self, stmt: InsertValues, txn=None) -> QueryResult:
        entry = self.catalog.entry(stmt.table)
        if entry.virtual:
            raise PlanError(f"system table {stmt.table!r} is read-only")
        rows = []
        for row in stmt.rows:
            vals = []
            for e in row:
                if not isinstance(e, Literal):
                    raise PlanError("INSERT VALUES requires literals")
                vals.append(e.value)
            rows.append(vals)
        cols = {}
        for i, c in enumerate(entry.schema.columns):
            arr = np.asarray([r[i] for r in rows], dtype=c.dtype.numpy_dtype)
            if c.dtype.numpy_dtype == object:
                arr = np.empty(len(rows), dtype=object)
                arr[:] = [r[i] for r in rows]
            cols[c.name] = arr
        batch = RowBatch(entry.schema, cols)
        return self._dml(stmt.table, "insert", batch=batch, txn=txn)

    def delete_where(self, stmt: DeleteStmt, txn=None) -> QueryResult:
        return self._dml(stmt.table, "delete", predicate=stmt.where, txn=txn)

    def update_where(self, stmt: UpdateStmt, txn=None) -> QueryResult:
        return self._dml(stmt.table, "update", predicate=stmt.where, assignments=stmt.assignments, txn=txn)

    def _dml(self, table: str, op: str, batch=None, predicate=None, assignments=None, txn=None) -> QueryResult:
        if self.catalog.has_table(table) and self.catalog.entry(table).virtual:
            raise PlanError(f"system table {table!r} is read-only")
        with self._write_lock:
            n = self.txn_system.run_dml(table, op, batch=batch, predicate=predicate,
                                        assignments=assignments, txn=txn)
        res = _empty_result()
        res.rowcount = n
        return res

    # -- observability --------------------------------------------------------------------
    def predicate_cache_bytes(self) -> dict[int, int]:
        return {
            w: sum(ts.predicate_cache_bytes() for ts in wk.storage.values())
            for w, wk in self.workers.items()
        }

    def table_rows(self, name: str) -> int:
        entry = self.catalog.entry(name)
        if isinstance(entry.scheme, Replicated):
            return self.workers[self.worker_ids[0]].storage[name].row_count
        return sum(w.storage[name].row_count for w in self.workers.values())

    def reorganize(self, name: str) -> None:
        for w in self.workers.values():
            w.storage[name].reorganize()


def _all_of(storage: TableStorage) -> RowBatch:
    parts = [f.all_rows() for f in storage.fragments]
    return RowBatch.concat(storage.schema, parts)


def _empty_result() -> QueryResult:
    from ..common.dtypes import DataType
    from ..common.schema import Column

    schema = Schema([Column("__ok", DataType.INT64)])
    return QueryResult(RowBatch(schema, {"__ok": np.empty(0, dtype=np.int64)}), ExecStats())
