"""Autonomic elasticity policy (DESIGN.md §10).

HRDBMS manages its own resources instead of delegating to a cluster
manager (paper §I-A); this module extends that decentralized stance to
*membership*: a small policy loop watches the serving-layer signals the
metrics registry already collects — admission queue depth, morsel-pool
busy time, per-link forwarded bytes, worker health — and decides when
the cluster should grow, drain a worker, or re-replicate a hot table.

The controller is deliberately split into three testable stages:

* :meth:`ElasticController.observe` samples the database's live counters
  into a plain dict (deltas since the previous observation for the
  rate-shaped signals);
* :meth:`ElasticController.decide` is a pure function from that dict to
  a decision string — ``"grow"``, ``"drain:<worker>"``,
  ``"replicate:<table>"``, or ``"hold"`` — so policy thresholds are unit
  testable without a cluster;
* :meth:`ElasticController.step` executes the decision through the
  elastic membership APIs (:meth:`Database.add_worker`,
  :meth:`Database.drain_worker`, :meth:`Database.replicate_table`),
  subject to a cooldown so one burst never triggers a rebalance storm.

Priorities mirror operations reality: route *failure* out first (a
blacklisted worker is drained so the placement stops depending on it),
then relieve admission pressure by growing, then attack communication
hot spots by re-replicating small dimension tables, and only then
consider shrinking an idle cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..storage.partition import Replicated

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database


@dataclass(frozen=True)
class ElasticityThresholds:
    """Knobs for the policy loop; defaults favor stability over speed."""

    #: admission queue depth at (or above) which the cluster grows
    grow_queue_depth: int = 2
    #: queue depth at (or below) which shrinking may be considered
    shrink_queue_depth: int = 0
    #: cluster-wide morsel busy fraction below which shrinking is allowed
    shrink_busy_fraction: float = 0.10
    #: forwarded-bytes fraction of total traffic that marks a
    #: communication hot spot worth re-replicating a table over
    replicate_forward_fraction: float = 0.35
    #: only tables at most this many rows are re-replication candidates
    replicate_max_rows: int = 100_000
    min_workers: int = 2
    max_workers: int = 16
    #: evaluations that must pass between two actions (anti-flap)
    cooldown: int = 2


class ElasticController:
    """The autonomic grow/drain/replicate loop over one Database."""

    def __init__(self, db: "Database", thresholds: ElasticityThresholds | None = None):
        self.db = db
        self.thresholds = thresholds or ElasticityThresholds()
        #: every decision step() has taken, in order
        self.history: list[str] = []
        self._last: tuple[float, float, int, int] | None = None
        self._since_action = 10**9  # no cooldown on the first action

    # -- observe ---------------------------------------------------------------
    def observe(self) -> dict:
        """Sample the cluster's elasticity signals into a plain dict."""
        db = self.db
        now = time.perf_counter()
        busy = db.scheduler.busy.value
        total_b = db.net.total_bytes
        fwd_b = db.net.forwarded_bytes
        if self._last is None:
            # no rate window yet: report full-busy so the first
            # observation can never trigger a shrink
            busy_fraction, fwd_fraction = 1.0, 0.0
        else:
            t0, busy0, total0, fwd0 = self._last
            d_wall = max(now - t0, 1e-9)
            busy_fraction = (busy - busy0) / (d_wall * max(len(db.worker_ids), 1))
            d_total = total_b - total0
            fwd_fraction = (fwd_b - fwd0) / d_total if d_total > 0 else 0.0
        self._last = (now, busy, total_b, fwd_b)
        live = set(db.worker_ids)
        return {
            "workers": len(live),
            "newest_worker": max(live),
            "queue_depth": db.admission.queue_depth,
            "blacklisted": sorted(db._executor.health.blacklisted() & live),
            "busy_fraction": busy_fraction,
            "forward_fraction": fwd_fraction,
            "small_partitioned_table": self._replication_candidate(),
        }

    def _replication_candidate(self) -> str | None:
        """The smallest partitioned (non-external) table under the
        re-replication size cap, or None."""
        best, best_rows = None, self.thresholds.replicate_max_rows + 1
        for name, entry in self.db.catalog.tables.items():
            if entry.external or isinstance(entry.scheme, Replicated):
                continue
            rows = self.db.table_rows(name)
            if rows < best_rows:
                best, best_rows = name, rows
        return best

    # -- decide ----------------------------------------------------------------
    def decide(self, obs: dict) -> str:
        """Pure policy: observation dict -> decision string."""
        t = self.thresholds
        if obs["blacklisted"] and obs["workers"] > t.min_workers:
            # route failure out of the placement before anything else
            return f"drain:{obs['blacklisted'][0]}"
        if obs["queue_depth"] >= t.grow_queue_depth and obs["workers"] < t.max_workers:
            return "grow"
        if (
            obs.get("forward_fraction", 0.0) >= t.replicate_forward_fraction
            and obs.get("small_partitioned_table")
        ):
            return f"replicate:{obs['small_partitioned_table']}"
        if (
            obs["queue_depth"] <= t.shrink_queue_depth
            and obs.get("busy_fraction", 1.0) < t.shrink_busy_fraction
            and obs["workers"] > t.min_workers
        ):
            return f"drain:{obs['newest_worker']}"
        return "hold"

    # -- act -------------------------------------------------------------------
    def evaluate(self) -> str:
        """Observe and decide, without acting."""
        return self.decide(self.observe())

    def step(self) -> str:
        """One loop iteration: observe, decide, act (cooldown-gated).

        Returns the decision actually applied (``"hold"`` when the
        cooldown suppressed an action)."""
        self._since_action += 1
        decision = self.evaluate()
        if decision != "hold" and self._since_action <= self.thresholds.cooldown:
            decision = "hold"
        if decision == "grow":
            self.db.add_worker()
        elif decision.startswith("drain:"):
            self.db.drain_worker(int(decision.split(":", 1)[1]))
        elif decision.startswith("replicate:"):
            self.db.replicate_table(decision.split(":", 1)[1])
        if decision != "hold":
            self._since_action = 0
        self.history.append(decision)
        return decision
