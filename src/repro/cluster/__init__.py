"""Cluster orchestration: workers, coordinators, catalog, Database façade."""

from .catalog import CatalogEntry, ClusterCatalog
from .database import Coordinator, Database, QueryResult, Session, Worker
from .plancache import PlanCache
from .resource import AdmissionController, AdmissionTimeout, ResourceMonitor

__all__ = [
    "Database",
    "QueryResult",
    "Session",
    "Worker",
    "Coordinator",
    "ClusterCatalog",
    "CatalogEntry",
    "PlanCache",
    "AdmissionController",
    "AdmissionTimeout",
    "ResourceMonitor",
]
