"""Cluster orchestration: workers, coordinators, catalog, Database façade."""

from .catalog import CatalogEntry, ClusterCatalog, PlacementMap
from .database import (
    Coordinator,
    Database,
    QueryResult,
    RebalanceReport,
    Session,
    Worker,
)
from .elastic import ElasticController, ElasticityThresholds
from .plancache import PlanCache
from .resource import AdmissionController, AdmissionTimeout, ResourceMonitor

__all__ = [
    "Database",
    "QueryResult",
    "Session",
    "Worker",
    "Coordinator",
    "ClusterCatalog",
    "CatalogEntry",
    "PlacementMap",
    "RebalanceReport",
    "ElasticController",
    "ElasticityThresholds",
    "PlanCache",
    "AdmissionController",
    "AdmissionTimeout",
    "ResourceMonitor",
]
