"""Cluster orchestration: workers, coordinators, catalog, Database façade."""

from .catalog import CatalogEntry, ClusterCatalog
from .database import Coordinator, Database, QueryResult, Worker

__all__ = [
    "Database",
    "QueryResult",
    "Worker",
    "Coordinator",
    "ClusterCatalog",
    "CatalogEntry",
]
