"""Coordinator plan cache.

OLAP dashboards replay the same parameterized statements continuously;
parse/bind/optimize is pure overhead on every repeat. The cache maps
*normalized SQL text* plus everything that could change the plan — the
planning mode, the coordinating node, the catalog version (DDL), and
the statistics version (ANALYZE) — to the already-optimized physical
plan. Physical plans are immutable after optimization, so concurrent
queries can execute one shared plan object simultaneously; only the
executor's per-query state (counters, exchange tags) is cloned per run.

Normalization is deliberately light: whitespace collapsing only, and
only *outside* single-quoted string literals. SQL literals are
case- and whitespace-sensitive — lowercasing the text or collapsing
runs inside ``'a  b'`` would alias distinct queries (and serve one
query the other's cached plan) — so literal spans pass through
verbatim while formatting-only variation around them still folds.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Hashable

_WS = re.compile(r"\s+")
#: a single-quoted SQL literal; '' is the escaped quote, so 'a''b' is one span
_LITERAL = re.compile(r"'(?:[^']|'')*'")


def normalize_sql(sql: str) -> str:
    """Collapse whitespace runs outside string literals; keep case."""
    out = []
    pos = 0
    for m in _LITERAL.finditer(sql):
        out.append(_WS.sub(" ", sql[pos : m.start()]))
        out.append(m.group(0))
        pos = m.end()
    out.append(_WS.sub(" ", sql[pos:]))
    return "".join(out).strip()


class PlanCache:
    """A bounded LRU of optimized physical plans, thread-safe."""

    def __init__(self, capacity: int = 64):
        self.capacity = max(0, capacity)
        self._plans: OrderedDict[Hashable, object] = OrderedDict()
        self._mu = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(
        sql: str, mode: str, coordinator: int, catalog_version: int, stats_version: int
    ) -> Hashable:
        return (normalize_sql(sql), mode, coordinator, catalog_version, stats_version)

    def get(self, key: Hashable):
        with self._mu:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: Hashable, plan: object) -> None:
        if self.capacity == 0:
            return
        with self._mu:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Evict one entry (adaptive re-planning); True if it was cached."""
        with self._mu:
            return self._plans.pop(key, None) is not None

    def clear(self) -> None:
        with self._mu:
            self._plans.clear()

    def entries(self) -> list:
        """Cached plan keys, LRU-oldest first (``sys.plan_cache``)."""
        with self._mu:
            return list(self._plans.keys())

    def __len__(self) -> int:
        with self._mu:
            return len(self._plans)

    def stats(self) -> dict:
        with self._mu:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._plans),
                "capacity": self.capacity,
            }
